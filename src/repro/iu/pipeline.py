"""The integer unit executor: SPARC V8 semantics with LEON-FT behaviour.

The model is instruction-stepped: :meth:`IntegerUnit.step` executes one
instruction (or one pipeline event -- an annulled delay slot, a trap entry,
an FT restart) and returns a :class:`StepResult` with exact cycle cost.
The fault-tolerance behaviour of section 4.4 is implemented literally:

* operands are read raw in the decode stage and *checked in the execute
  stage*; a correctable error corrects one register, restarts the pipeline
  at the failing instruction (4 cycles, like a trap) and re-executes -- a
  double-store touching four bad registers restarts up to four times;
* an uncorrectable register error takes the ``r_register_access_error``
  trap;
* uncorrectable memory errors arrive as precise instruction/data access
  error traps through cache sub-blocking (section 4.6).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.amba.ahb import TransferSize
from repro.cache.dcache import DataCache
from repro.cache.icache import InstructionCache
from repro.core.config import LeonConfig
from repro.core.statistics import ErrorCounters, PerfCounters
from repro.errors import SimulationError, UncorrectableError
from repro.fpu.fpu import Fpu
from repro.fpu.fsr import Fcc
from repro.ft.protection import ErrorKind, ProtectionScheme
from repro.ft.tmr import FlipFlopBank
from repro.iu import timing
from repro.iu.psr import SpecialRegisters
from repro.iu.regfile import RegisterFile
from repro.peripherals.irqctrl import InterruptController
from repro.sparc.decode import Instr, decode
from repro.sparc.isa import Cond, FCond, Op, Op2, Op3, Op3Mem, to_s32, to_u32
from repro.sparc.traps import TrapType
from repro.telemetry.bus import NULL_TELEMETRY


class StepEvent(enum.Enum):
    """What happened during one :meth:`IntegerUnit.step`."""

    OK = "ok"
    ANNULLED = "annulled"  # annulled delay slot (occupies one cycle)
    TRAP = "trap"
    INTERRUPT = "interrupt"
    RESTART = "restart"  # FT pipeline restart after a regfile correction
    HALTED = "halted"
    IDLE = "idle"  # power-down, waiting for an interrupt


class HaltReason(enum.Enum):
    RUNNING = "running"
    ERROR_MODE = "error-mode"  # trap taken while ET = 0
    EXTERNAL = "external"  # harness-requested stop


@dataclass(slots=True)
class StepResult:
    """One step's outcome (the master/checker compare signature includes
    ``cycles``, so internal corrections skew the pair -- section 4.7).

    ``writes`` defaults to a shared empty tuple so the common no-store step
    allocates nothing; steps with stores carry the step's write list.
    """

    event: StepEvent
    cycles: int
    pc: int
    instr: Optional[Instr] = None
    trap_tt: Optional[int] = None
    corrected_register: Optional[int] = None
    writes: Sequence[Tuple[int, int]] = ()


_INTEGER_LOADS = {Op3Mem.LD, Op3Mem.LDUB, Op3Mem.LDUH, Op3Mem.LDSB, Op3Mem.LDSH,
                  Op3Mem.LDD, Op3Mem.LDA, Op3Mem.LDUBA, Op3Mem.LDUHA,
                  Op3Mem.LDSBA, Op3Mem.LDSHA, Op3Mem.LDDA}
_INTEGER_STORES = {Op3Mem.ST, Op3Mem.STB, Op3Mem.STH, Op3Mem.STD,
                   Op3Mem.STA, Op3Mem.STBA, Op3Mem.STHA, Op3Mem.STDA}


class IntegerUnit:
    """The LEON SPARC V8 integer unit."""

    def __init__(
        self,
        config: LeonConfig,
        regfile: RegisterFile,
        special: SpecialRegisters,
        icache: InstructionCache,
        dcache: DataCache,
        fpu: Optional[Fpu],
        ffbank: FlipFlopBank,
        errors: ErrorCounters,
        perf: PerfCounters,
        is_cacheable: Callable[[int], bool],
        irqctrl: Optional[InterruptController] = None,
        telemetry=None,
    ) -> None:
        self.config = config
        self.regfile = regfile
        self.r = special
        self.icache = icache
        self.dcache = dcache
        self.fpu = fpu
        self.ffbank = ffbank
        self.errors = errors
        self.perf = perf
        self.is_cacheable = is_cacheable
        self.irqctrl = irqctrl
        # Fast pre-check for the per-step interrupt sample: with no bits
        # pending (lane 0, clean) no level can be deliverable, whatever
        # ET/PIL/mask say, so the PSR reads are skipped entirely.  The
        # pending register is never rebound (it lives in the ffbank).
        self._irq_pending = irqctrl._pending if irqctrl is not None else None
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._rf_mech = regfile.protection.value
        if regfile.duplicated:
            self._rf_mech += "+dup"

        self.halted = HaltReason.RUNNING
        self.power_down = False
        #: Set when a branch annuls its delay slot.
        self._annul = ffbank.register("iu.annul", 1)
        #: Outputs of the current step, for the master/checker compare.
        self._writes: List[Tuple[int, int]] = []
        self._check_operands = regfile.protection is not ProtectionScheme.NONE

    # ---------------------------------------------------------------- state

    def capture(self) -> dict:
        """Non-ffbank pipeline state (PC/nPC/PSR... live in the bank)."""
        return {
            "halted": self.halted.value,
            "power_down": self.power_down,
        }

    def restore(self, state: dict) -> None:
        self.halted = HaltReason(state["halted"])
        self.power_down = bool(state["power_down"])
        self._writes = []

    def reset(self) -> None:
        """Assert the processor reset line: leave error mode, clear the
        pipeline and restart fetching at the reset vector.

        This is the recovery path the paper wires the watchdog output to --
        RAM contents (register file, caches, memory) are untouched; boot
        software re-initializes them.
        """
        self.halted = HaltReason.RUNNING
        self.power_down = False
        self._annul.load(0)
        self._writes = []
        self.r.reset()

    # ------------------------------------------------------------------ helpers

    def _reg_read(self, reg: int) -> int:
        data, _check, _physical = self.regfile.read_raw(self.r.psr.cwp, reg)
        return data

    def _reg_write(self, reg: int, value: int) -> None:
        self.regfile.write(self.r.psr.cwp, reg, value)

    def _operand2(self, instr: Instr) -> int:
        if instr.imm is not None:
            return to_u32(instr.imm)
        return self._reg_read(instr.rs2)

    def _advance(self) -> None:
        self.r.pc = self.r.npc
        self.r.npc = self.r.npc + 4

    def _jump(self, target: int) -> None:
        """Delayed control transfer: the delay slot (current npc) executes,
        then control reaches ``target``."""
        self.r.pc = self.r.npc
        self.r.npc = target

    # ------------------------------------------------------------------ traps

    def _enter_trap(self, tt: int, *, pc: Optional[int] = None,
                    npc: Optional[int] = None) -> Optional[int]:
        """Take a trap: returns the trap tt, or None if the processor went
        into error mode (trap with ET = 0)."""
        psr = self.r.psr
        if not psr.et:
            # SPARC V8: a synchronous trap with traps disabled halts the
            # processor in error mode.  This is the paper's "error trap or
            # software failure" outcome.
            self.halted = HaltReason.ERROR_MODE
            return None
        self.perf.traps += 1
        pc = self.r.pc if pc is None else pc
        npc = self.r.npc if npc is None else npc
        psr.et = 0
        psr.ps = psr.s
        psr.s = 1
        psr.cwp = (psr.cwp - 1) % self.config.nwindows
        # Locals l1/l2 of the new window get pc/npc.
        self.regfile.write(psr.cwp, 17, pc)
        self.regfile.write(psr.cwp, 18, npc)
        self.r.set_tt(tt)
        vector = self.r.trap_vector
        self.r.pc = vector
        self.r.npc = vector + 4
        self._annul.load(0)
        return tt

    def _trap_result(self, tt: int, cycles: int, pc: int,
                     instr: Optional[Instr] = None) -> StepResult:
        taken = self._enter_trap(tt)
        cycles += timing.CYCLES_TRAP
        if taken is None:
            return StepResult(StepEvent.HALTED, cycles, pc, instr=instr, trap_tt=tt)
        return StepResult(StepEvent.TRAP, cycles, pc, instr=instr, trap_tt=tt,
                          writes=self._writes)

    # ------------------------------------------------------------------ stepping

    def step(self) -> StepResult:
        """Execute one instruction (or pipeline event)."""
        result = self._step()
        self.perf.cycles += result.cycles
        if result.event is StepEvent.OK:
            self.perf.instructions += 1
        return result

    def _step(self) -> StepResult:
        if self.halted is not HaltReason.RUNNING:
            return StepResult(StepEvent.HALTED, 0, self.r.pc)
        if self._writes:
            # Only steps that stored need a fresh list; everything else
            # reuses the (empty) one from the previous step.
            self._writes = []

        # Interrupts are sampled between instructions.
        r = self.r
        psr = r.psr
        pending = self._irq_pending
        if pending is not None and (pending._lanes[0] or pending._dirty) \
                and psr.et:
            level = self.irqctrl.pending_level(psr.pil)
            if level:
                self.power_down = False
                self.irqctrl.acknowledge(level)
                pc = r.pc
                tt = self._enter_trap(int(TrapType.interrupt(level)))
                event = StepEvent.INTERRUPT if tt is not None else StepEvent.HALTED
                return StepResult(event, timing.CYCLES_TRAP, pc, trap_tt=tt)

        if self.power_down:
            return StepResult(StepEvent.IDLE, 1, r.pc)

        pc = r.pc
        cacheable = self.is_cacheable(pc)
        # Hot path: a clean cacheable hit needs no CacheAccess record.
        word = self.icache.fetch_word(pc) if cacheable else None
        if word is not None:
            cycles = 1
        else:
            fetch = self.icache.fetch(pc, cacheable=cacheable)
            cycles = 1 + fetch.cycles
            if fetch.mem_error:
                self._note_memory_error_trap()
                return self._trap_result(
                    int(TrapType.INSTRUCTION_ACCESS_ERROR), cycles, pc)
            word = fetch.data

        instr = decode(word)

        if self._annul.value:
            # Annulled delay slot: fetched but not executed.
            self._annul.load(0)
            self._advance()
            return StepResult(StepEvent.ANNULLED, cycles, pc, instr=instr)

        # Execute-stage operand check (section 4.4).
        if self._check_operands and instr.sources:
            restart = self._check_sources(instr)
            if restart is not None:
                kind, physical = restart
                if kind is ErrorKind.CORRECTABLE:
                    self.perf.pipeline_restarts += 1
                    self.perf.restart_cycles += timing.CYCLES_TRAP
                    cycles += timing.CYCLES_TRAP
                    # pc unchanged: the instruction re-executes from fetch.
                    return StepResult(StepEvent.RESTART, cycles, pc, instr=instr,
                                      corrected_register=physical)
                self._note_register_error_trap("regfile", physical)
                return self._trap_result(
                    int(TrapType.R_REGISTER_ACCESS_ERROR), cycles, pc, instr
                )

        if not instr.valid:
            return self._trap_result(int(TrapType.ILLEGAL_INSTRUCTION), cycles, pc, instr)

        return self._execute(instr, pc, cycles)

    def _check_sources(self, instr: Instr) -> Optional[Tuple[ErrorKind, int]]:
        """Check every register the instruction reads; on the first error
        return (kind, physical index) after correcting one register.

        One register is corrected per restart: "if more than one correctable
        error occurs, the instruction will be restarted once for each error,
        correcting and storing one register value each time."

        The source-register tuple is precomputed at decode time
        (:attr:`Instr.sources`).
        """
        regfile = self.regfile
        cwp = self.r.psr.cwp
        for reg in instr.sources:
            if regfile.operand_ok(cwp, reg):
                continue
            check = regfile.check_operand(cwp, reg)
            if check.kind is ErrorKind.NONE:  # pragma: no cover - fast path agrees
                continue
            if check.kind is ErrorKind.CORRECTABLE:
                regfile.correct(check)
                self.errors.rfe += 1
                telemetry = self.telemetry
                if telemetry.enabled:
                    instr_count = self.perf.instructions
                    telemetry.detect("regfile", check.physical,
                                     mech=self._rf_mech, kind="correctable",
                                     counter="RFE", instr=instr_count)
                    telemetry.resolve("regfile", check.physical,
                                      action="pipeline-restart",
                                      instr=instr_count)
            return check.kind, check.physical
        return None

    # ------------------------------------------------------------------ execution

    def _execute(self, instr: Instr, pc: int, cycles: int) -> StepResult:
        if instr.op == Op.CALL:
            self._reg_write(15, pc)
            self._jump(to_u32(pc + instr.disp))
            return StepResult(StepEvent.OK, cycles, pc, instr=instr)
        if instr.op == Op.FORMAT2:
            return self._execute_format2(instr, pc, cycles)
        if instr.op == Op.ARITH:
            return self._execute_arith(instr, pc, cycles)
        return self._execute_mem(instr, pc, cycles)

    # -- format 2 ---------------------------------------------------------------

    def _execute_format2(self, instr: Instr, pc: int, cycles: int) -> StepResult:
        if instr.op2 == Op2.SETHI:
            self._reg_write(instr.rd, instr.imm22)
            self._advance()
            return StepResult(StepEvent.OK, cycles, pc, instr=instr)
        if instr.op2 == Op2.UNIMP:
            return self._trap_result(int(TrapType.ILLEGAL_INSTRUCTION), cycles, pc, instr)
        if instr.op2 == Op2.BICC:
            taken = self._icc_condition(instr.cond)
        elif instr.op2 == Op2.FBFCC:
            if self.fpu is None or not self.r.psr.ef:
                return self._trap_result(int(TrapType.FP_DISABLED), cycles, pc, instr)
            taken = self._fcc_condition(instr.cond)
        else:  # CBccc: no co-processor attached
            return self._trap_result(int(TrapType.CP_DISABLED), cycles, pc, instr)

        if taken:
            self._jump(to_u32(pc + instr.disp))
            # "branch always" with the annul bit annuls its own delay slot.
            if instr.annul and instr.cond in (Cond.A, FCond.A):
                self._annul.load(1)
        else:
            self._advance()
            if instr.annul:
                self._annul.load(1)
        return StepResult(StepEvent.OK, cycles, pc, instr=instr)

    def _icc_condition(self, cond: int) -> bool:
        icc = self.r.psr.icc  # NZVC, N = bit 3
        n = (icc >> 3) & 1
        z = (icc >> 2) & 1
        v = (icc >> 1) & 1
        c = icc & 1
        base = cond & 7
        if base == Cond.N:
            result = False
        elif base == Cond.E:
            result = bool(z)
        elif base == Cond.LE:
            result = bool(z or (n ^ v))
        elif base == Cond.L:
            result = bool(n ^ v)
        elif base == Cond.LEU:
            result = bool(c or z)
        elif base == Cond.CS:
            result = bool(c)
        elif base == Cond.NEG:
            result = bool(n)
        else:  # VS
            result = bool(v)
        # Conditions 8..15 are the negations of 0..7 (A = not N, etc.).
        return result if cond < 8 else not result

    def _fcc_condition(self, cond: int) -> bool:
        fcc = self.fpu.fsr.fcc
        lt = fcc is Fcc.LESS
        gt = fcc is Fcc.GREATER
        u = fcc is Fcc.UNORDERED
        base = cond & 7
        if base == FCond.N:
            result = False
        elif base == FCond.NE:
            result = lt or gt or u
        elif base == FCond.LG:
            result = lt or gt
        elif base == FCond.UL:
            result = u or lt
        elif base == FCond.L:
            result = lt
        elif base == FCond.UG:
            result = u or gt
        elif base == FCond.G:
            result = gt
        else:  # U
            result = u
        # Conditions 8..15 are the negations of 0..7 (FBA = not FBN, ...).
        return result if cond < 8 else not result

    # -- format 3, op = 2 -----------------------------------------------------------

    def _set_icc(self, n: int, z: int, v: int, c: int) -> None:
        self.r.psr.icc = (n << 3) | (z << 2) | (v << 1) | c

    def _icc_from_result(self, result: int, v: int = 0, c: int = 0) -> None:
        result = to_u32(result)
        self._set_icc(result >> 31, int(result == 0), v, c)

    def _execute_arith(self, instr: Instr, pc: int, cycles: int) -> StepResult:
        op3 = instr.op3
        psr = self.r.psr

        if op3 in (Op3.FPOP1, Op3.FPOP2):
            if self.fpu is None or not psr.ef:
                return self._trap_result(int(TrapType.FP_DISABLED), cycles, pc, instr)
            try:
                fpu_cycles = self.fpu.execute(instr.opf, instr.rs1,
                                              instr.rs2, instr.rd)
            except UncorrectableError:
                # Double-bit error in an f-register operand: same register
                # error trap as the integer file (the f-regs share its RAM).
                self._note_register_error_trap("fpregs", None)
                return self._trap_result(int(TrapType.R_REGISTER_ACCESS_ERROR),
                                         cycles, pc, instr)
            self._advance()
            return StepResult(StepEvent.OK, cycles + fpu_cycles - 1, pc, instr=instr)
        if op3 in (Op3.CPOP1, Op3.CPOP2):
            return self._trap_result(int(TrapType.CP_DISABLED), cycles, pc, instr)

        a = self._reg_read(instr.rs1)
        b = self._operand2(instr)

        if op3 == Op3.JMPL:
            target = to_u32(a + b)
            if target & 3:
                return self._trap_result(
                    int(TrapType.MEM_ADDRESS_NOT_ALIGNED), cycles, pc, instr
                )
            self._reg_write(instr.rd, pc)
            self._jump(target)
            return StepResult(StepEvent.OK, cycles + timing.CYCLES_JMPL - 1, pc,
                              instr=instr)
        if op3 == Op3.RETT:
            return self._execute_rett(instr, pc, cycles, a, b)
        if op3 == Op3.TICC:
            if self._icc_condition(instr.cond):
                tt = TrapType.software(b)
                return self._trap_result(tt, cycles, pc, instr)
            self._advance()
            return StepResult(StepEvent.OK, cycles, pc, instr=instr)
        if op3 == Op3.FLUSH:
            self.icache.invalidate_word(to_u32(a + b))
            self._advance()
            return StepResult(StepEvent.OK, cycles, pc, instr=instr)
        if op3 in (Op3.SAVE, Op3.RESTORE):
            return self._execute_window(instr, pc, cycles, a, b)
        if op3 in _RDWR_OPS:
            return self._execute_rdwr(instr, pc, cycles, a, b)

        handler = _ALU_HANDLERS.get(op3)
        if handler is None:
            return self._trap_result(int(TrapType.ILLEGAL_INSTRUCTION), cycles, pc, instr)
        try:
            value, extra = handler(self, a, b)
        except _DivisionByZero:
            return self._trap_result(int(TrapType.DIVISION_BY_ZERO), cycles, pc, instr)
        except _TagOverflow:
            return self._trap_result(int(TrapType.TAG_OVERFLOW), cycles, pc, instr)
        self._reg_write(instr.rd, value)
        self._advance()
        return StepResult(StepEvent.OK, cycles + extra, pc, instr=instr)

    def _execute_rett(self, instr: Instr, pc: int, cycles: int,
                      a: int, b: int) -> StepResult:
        psr = self.r.psr
        if psr.et:
            tt = (TrapType.ILLEGAL_INSTRUCTION if psr.s
                  else TrapType.PRIVILEGED_INSTRUCTION)
            return self._trap_result(int(tt), cycles, pc, instr)
        if not psr.s:
            self.halted = HaltReason.ERROR_MODE
            return StepResult(StepEvent.HALTED, cycles, pc, instr=instr)
        new_cwp = (psr.cwp + 1) % self.config.nwindows
        if (self.r.wim >> new_cwp) & 1:
            # Window underflow with ET = 0: error mode.
            self.halted = HaltReason.ERROR_MODE
            return StepResult(StepEvent.HALTED, cycles, pc, instr=instr,
                              trap_tt=int(TrapType.WINDOW_UNDERFLOW))
        target = to_u32(a + b)
        if target & 3:
            self.halted = HaltReason.ERROR_MODE
            return StepResult(StepEvent.HALTED, cycles, pc, instr=instr,
                              trap_tt=int(TrapType.MEM_ADDRESS_NOT_ALIGNED))
        psr.cwp = new_cwp
        psr.s = psr.ps
        psr.et = 1
        self._jump(target)
        return StepResult(StepEvent.OK, cycles + timing.CYCLES_JMPL - 1, pc, instr=instr)

    def _execute_window(self, instr: Instr, pc: int, cycles: int,
                        a: int, b: int) -> StepResult:
        psr = self.r.psr
        if instr.op3 == Op3.SAVE:
            new_cwp = (psr.cwp - 1) % self.config.nwindows
            trap = TrapType.WINDOW_OVERFLOW
        else:
            new_cwp = (psr.cwp + 1) % self.config.nwindows
            trap = TrapType.WINDOW_UNDERFLOW
        if (self.r.wim >> new_cwp) & 1:
            return self._trap_result(int(trap), cycles, pc, instr)
        # Source operands come from the old window, the destination is
        # written in the new window.
        psr.cwp = new_cwp
        self._reg_write(instr.rd, to_u32(a + b))
        self._advance()
        return StepResult(StepEvent.OK, cycles, pc, instr=instr)

    def _execute_rdwr(self, instr: Instr, pc: int, cycles: int,
                      a: int, b: int) -> StepResult:
        psr = self.r.psr
        op3 = instr.op3
        privileged = op3 in (Op3.RDPSR, Op3.RDWIM, Op3.RDTBR,
                             Op3.WRPSR, Op3.WRWIM, Op3.WRTBR)
        if privileged and not psr.s:
            return self._trap_result(int(TrapType.PRIVILEGED_INSTRUCTION),
                                     cycles, pc, instr)
        if op3 == Op3.RDASR:  # rs1 = 0 -> RDY
            self._reg_write(instr.rd, self.r.y)
        elif op3 == Op3.RDPSR:
            self._reg_write(instr.rd, psr.value)
        elif op3 == Op3.RDWIM:
            self._reg_write(instr.rd, self.r.wim)
        elif op3 == Op3.RDTBR:
            self._reg_write(instr.rd, self.r.tbr_read)
        elif op3 == Op3.WRASR:
            self.r.y = a ^ b
        elif op3 == Op3.WRPSR:
            value = a ^ b
            if (value & 0x1F) >= self.config.nwindows:
                return self._trap_result(int(TrapType.ILLEGAL_INSTRUCTION),
                                         cycles, pc, instr)
            psr.write(value)
        elif op3 == Op3.WRWIM:
            self.r.wim = a ^ b
        elif op3 == Op3.WRTBR:
            self.r.tbr = a ^ b
        else:  # pragma: no cover
            raise SimulationError(f"unhandled rd/wr op3 {op3:#x}")
        self._advance()
        return StepResult(StepEvent.OK, cycles, pc, instr=instr)

    # -- format 3, op = 3 (memory) -----------------------------------------------------

    def _execute_mem(self, instr: Instr, pc: int, cycles: int) -> StepResult:
        op3 = instr.op3
        psr = self.r.psr

        if op3 in (Op3Mem.LDF, Op3Mem.LDDF, Op3Mem.LDFSR,
                   Op3Mem.STF, Op3Mem.STDF, Op3Mem.STFSR, Op3Mem.STDFQ):
            if self.fpu is None or not psr.ef:
                return self._trap_result(int(TrapType.FP_DISABLED), cycles, pc, instr)

        alternate = op3 >= 0x10 and op3 <= 0x1F
        if alternate:
            if instr.imm is not None:
                return self._trap_result(int(TrapType.ILLEGAL_INSTRUCTION),
                                         cycles, pc, instr)
            if not psr.s:
                return self._trap_result(int(TrapType.PRIVILEGED_INSTRUCTION),
                                         cycles, pc, instr)

        address = to_u32(self._reg_read(instr.rs1) + self._operand2(instr))

        alignment = _ALIGNMENT.get(op3, 4)
        if address % alignment:
            return self._trap_result(int(TrapType.MEM_ADDRESS_NOT_ALIGNED),
                                     cycles, pc, instr)
        if op3 in (Op3Mem.LDD, Op3Mem.STD, Op3Mem.LDDA, Op3Mem.STDA,
                   Op3Mem.LDDF, Op3Mem.STDF) and instr.rd & 1:
            return self._trap_result(int(TrapType.ILLEGAL_INSTRUCTION),
                                     cycles, pc, instr)

        if alternate and instr.asi not in (0x8, 0x9, 0xA, 0xB):
            return self._execute_asi(instr, pc, cycles, address)

        cacheable = self.is_cacheable(address)
        if op3 in _INTEGER_LOADS or op3 in (Op3Mem.LDF, Op3Mem.LDDF, Op3Mem.LDFSR):
            return self._execute_load(instr, pc, cycles, address, cacheable)
        if op3 in _INTEGER_STORES or op3 in (Op3Mem.STF, Op3Mem.STDF, Op3Mem.STFSR):
            return self._execute_store(instr, pc, cycles, address, cacheable)
        if op3 in (Op3Mem.LDSTUB, Op3Mem.LDSTUBA):
            return self._execute_ldstub(instr, pc, cycles, address, cacheable)
        if op3 in (Op3Mem.SWAP, Op3Mem.SWAPA):
            return self._execute_swap(instr, pc, cycles, address, cacheable)
        return self._trap_result(int(TrapType.ILLEGAL_INSTRUCTION), cycles, pc, instr)

    def _data_error(self, cycles: int, pc: int, instr: Instr) -> StepResult:
        self._note_memory_error_trap()
        return self._trap_result(int(TrapType.DATA_ACCESS_ERROR), cycles, pc, instr)

    def _note_memory_error_trap(self) -> None:
        """Count (and trace) an uncorrectable memory error reaching software."""
        self.errors.memory_error_traps += 1
        telemetry = self.telemetry
        if telemetry.enabled:
            instr_count = self.perf.instructions
            telemetry.detect("ext-mem", None, mech="edac", kind="detected",
                             counter="memory_error_traps", instr=instr_count)
            telemetry.resolve("ext-mem", None, action="trap",
                              instr=instr_count)

    def _note_register_error_trap(self, site: str,
                                  word: Optional[int]) -> None:
        """Count (and trace) an uncorrectable register-file error trap."""
        self.errors.register_error_traps += 1
        telemetry = self.telemetry
        if telemetry.enabled:
            instr_count = self.perf.instructions
            telemetry.detect(site, word, mech=self._rf_mech, kind="detected",
                             counter="register_error_traps",
                             instr=instr_count)
            telemetry.resolve(site, word, action="trap", instr=instr_count)

    def _execute_load(self, instr: Instr, pc: int, cycles: int, address: int,
                      cacheable: bool) -> StepResult:
        op3 = instr.op3
        self.perf.loads += 1
        size = _SIZES.get(op3, TransferSize.WORD)
        dcache = self.dcache
        # Hot path: a clean cacheable hit needs no CacheAccess record.
        data = dcache.read_fast(address, size) \
            if cacheable and dcache.enabled else None
        if data is None:
            access = dcache.read(address, size, cacheable=cacheable)
            cycles += access.cycles
            if access.mem_error:
                return self._data_error(cycles, pc, instr)
            data = access.data
        if op3 in (Op3Mem.LDSB, Op3Mem.LDSBA):
            data = to_u32(to_s32((data & 0xFF) << 24) >> 24)
        elif op3 in (Op3Mem.LDSH, Op3Mem.LDSHA):
            data = to_u32(to_s32((data & 0xFFFF) << 16) >> 16)

        base = timing.CYCLES_LOAD
        if op3 in (Op3Mem.LDD, Op3Mem.LDDA, Op3Mem.LDDF):
            second_data = dcache.read_fast(address + 4, TransferSize.WORD) \
                if cacheable and dcache.enabled else None
            if second_data is None:
                second = dcache.read(address + 4, TransferSize.WORD,
                                     cacheable=cacheable)
                cycles += second.cycles
                if second.mem_error:
                    return self._data_error(cycles, pc, instr)
                second_data = second.data
            base = timing.CYCLES_LDD
            if op3 == Op3Mem.LDDF:
                self.fpu.write_reg(instr.rd & 0x1E, data)
                self.fpu.write_reg((instr.rd & 0x1E) + 1, second_data)
            else:
                self._reg_write(instr.rd & 0x1E, data)
                self._reg_write((instr.rd & 0x1E) + 1, second_data)
        elif op3 == Op3Mem.LDF:
            self.fpu.write_reg(instr.rd, data)
        elif op3 == Op3Mem.LDFSR:
            self.fpu.fsr.write(data)
        else:
            self._reg_write(instr.rd, data)
        self._advance()
        return StepResult(StepEvent.OK, cycles + base - 1, pc, instr=instr)

    def _execute_store(self, instr: Instr, pc: int, cycles: int, address: int,
                       cacheable: bool) -> StepResult:
        op3 = instr.op3
        self.perf.stores += 1
        size = _SIZES.get(op3, TransferSize.WORD)
        try:
            if op3 == Op3Mem.STF:
                value = self.fpu.read_reg(instr.rd)
            elif op3 == Op3Mem.STDF:
                value = self.fpu.read_reg(instr.rd & 0x1E)
            else:
                value = None
        except UncorrectableError:
            self._note_register_error_trap("fpregs", None)
            return self._trap_result(int(TrapType.R_REGISTER_ACCESS_ERROR),
                                     cycles, pc, instr)
        if value is not None:
            cycles += self.fpu.take_restart_cycles()
        elif op3 == Op3Mem.STFSR:
            value = self.fpu.fsr.value
        elif op3 in (Op3Mem.STD, Op3Mem.STDA):
            value = self._reg_read(instr.rd & 0x1E)
        else:
            value = self._reg_read(instr.rd)
        if size is TransferSize.BYTE:
            value &= 0xFF
        elif size is TransferSize.HALFWORD:
            value &= 0xFFFF

        access = self.dcache.write(address, value, size, cacheable=cacheable)
        cycles += access.cycles
        self._writes.append((address, value))
        if access.mem_error:
            self._note_memory_error_trap()
            return self._trap_result(int(TrapType.DATA_STORE_ERROR), cycles, pc, instr)

        base = timing.CYCLES_STORE
        if op3 in (Op3Mem.STD, Op3Mem.STDA, Op3Mem.STDF):
            if op3 == Op3Mem.STDF:
                try:
                    second_value = self.fpu.read_reg((instr.rd & 0x1E) + 1)
                except UncorrectableError:
                    self._note_register_error_trap("fpregs", None)
                    return self._trap_result(
                        int(TrapType.R_REGISTER_ACCESS_ERROR), cycles, pc, instr)
                cycles += self.fpu.take_restart_cycles()
            else:
                second_value = self._reg_read((instr.rd & 0x1E) + 1)
            second = self.dcache.write(address + 4, second_value,
                                       TransferSize.WORD, cacheable=cacheable,
                                       double=True)
            cycles += second.cycles
            self._writes.append((address + 4, second_value))
            if second.mem_error:
                self._note_memory_error_trap()
                return self._trap_result(int(TrapType.DATA_STORE_ERROR),
                                         cycles, pc, instr)
            base = timing.CYCLES_STD
        self._advance()
        return StepResult(StepEvent.OK, cycles + base - 1, pc, instr=instr,
                          writes=self._writes)

    def _execute_ldstub(self, instr: Instr, pc: int, cycles: int, address: int,
                        cacheable: bool) -> StepResult:
        access = self.dcache.read(address, TransferSize.BYTE, cacheable=cacheable)
        cycles += access.cycles
        if access.mem_error:
            return self._data_error(cycles, pc, instr)
        write = self.dcache.write(address, 0xFF, TransferSize.BYTE,
                                  cacheable=cacheable)
        cycles += write.cycles
        self._writes.append((address, 0xFF))
        self._reg_write(instr.rd, access.data & 0xFF)
        self._advance()
        return StepResult(StepEvent.OK, cycles + timing.CYCLES_ATOMIC - 1, pc,
                          instr=instr, writes=self._writes)

    def _execute_swap(self, instr: Instr, pc: int, cycles: int, address: int,
                      cacheable: bool) -> StepResult:
        old = self._reg_read(instr.rd)
        access = self.dcache.read(address, TransferSize.WORD, cacheable=cacheable)
        cycles += access.cycles
        if access.mem_error:
            return self._data_error(cycles, pc, instr)
        write = self.dcache.write(address, old, TransferSize.WORD,
                                  cacheable=cacheable)
        cycles += write.cycles
        self._writes.append((address, old))
        self._reg_write(instr.rd, access.data)
        self._advance()
        return StepResult(StepEvent.OK, cycles + timing.CYCLES_ATOMIC - 1, pc,
                          instr=instr, writes=self._writes)

    # -- diagnostic ASI space (LEON cache diagnostics) -----------------------------------

    def _execute_asi(self, instr: Instr, pc: int, cycles: int,
                     address: int) -> StepResult:
        """LEON ASIs: 0x5/0x6 flush, 0xC..0xF cache RAM diagnostics."""
        asi = instr.asi
        is_load = instr.op3 in _INTEGER_LOADS
        if asi == 0x05:
            self.icache.flush()
        elif asi == 0x06:
            self.dcache.flush()
        elif asi in (0x0C, 0x0D, 0x0E, 0x0F):
            ram = {
                0x0C: self.icache.tag_ram,
                0x0D: self.icache.data_ram,
                0x0E: self.dcache.tag_ram,
                0x0F: self.dcache.data_ram,
            }[asi]
            index = (address >> 2) % ram.words
            if is_load:
                data, _kind = ram.read(index)
                self._reg_write(instr.rd, data)
            else:
                ram.write(index, self._reg_read(instr.rd))
        else:
            return self._trap_result(int(TrapType.DATA_ACCESS_EXCEPTION),
                                     cycles, pc, instr)
        self._advance()
        return StepResult(StepEvent.OK, cycles + 1, pc, instr=instr)


# ------------------------------------------------------------------ ALU handlers


class _DivisionByZero(Exception):
    pass


class _TagOverflow(Exception):
    pass


def _add(iu: IntegerUnit, a: int, b: int, *, cc: bool, carry_in: int = 0):
    result = a + b + carry_in
    r32 = to_u32(result)
    if cc:
        v = ((~(a ^ b)) & (a ^ r32)) >> 31 & 1
        c = int(result > 0xFFFFFFFF)
        iu._icc_from_result(r32, v, c)
    return r32, 0


def _sub(iu: IntegerUnit, a: int, b: int, *, cc: bool, borrow_in: int = 0):
    result = a - b - borrow_in
    r32 = to_u32(result)
    if cc:
        v = ((a ^ b) & (a ^ r32)) >> 31 & 1
        c = int(result < 0)
        iu._icc_from_result(r32, v, c)
    return r32, 0


def _logic(op, cc: bool):
    def handler(iu: IntegerUnit, a: int, b: int):
        result = to_u32(op(a, b))
        if cc:
            iu._icc_from_result(result)
        return result, 0

    return handler


def _umul(iu: IntegerUnit, a: int, b: int, *, cc: bool):
    product = a * b
    iu.r.y = product >> 32
    result = to_u32(product)
    if cc:
        iu._icc_from_result(result)
    return result, timing.CYCLES_MUL - 1


def _smul(iu: IntegerUnit, a: int, b: int, *, cc: bool):
    product = to_s32(a) * to_s32(b)
    iu.r.y = (product >> 32) & 0xFFFFFFFF
    result = to_u32(product)
    if cc:
        iu._icc_from_result(result)
    return result, timing.CYCLES_MUL - 1


def _udiv(iu: IntegerUnit, a: int, b: int, *, cc: bool):
    if b == 0:
        raise _DivisionByZero
    dividend = (iu.r.y << 32) | a
    quotient = dividend // b
    v = 0
    if quotient > 0xFFFFFFFF:
        quotient = 0xFFFFFFFF
        v = 1
    if cc:
        iu._icc_from_result(quotient, v, 0)
    return quotient, timing.CYCLES_DIV - 1


def _sdiv(iu: IntegerUnit, a: int, b: int, *, cc: bool):
    divisor = to_s32(b)
    if divisor == 0:
        raise _DivisionByZero
    dividend = (iu.r.y << 32) | a
    if dividend & (1 << 63):
        dividend -= 1 << 64
    # SPARC divides toward zero.
    quotient = abs(dividend) // abs(divisor)
    if (dividend < 0) != (divisor < 0):
        quotient = -quotient
    v = 0
    if quotient > 0x7FFFFFFF:
        quotient, v = 0x7FFFFFFF, 1
    elif quotient < -(1 << 31):
        quotient, v = -(1 << 31), 1
    if cc:
        iu._icc_from_result(to_u32(quotient), v, 0)
    return to_u32(quotient), timing.CYCLES_DIV - 1


def _mulscc(iu: IntegerUnit, a: int, b: int):
    psr = iu.r.psr
    op1 = (((psr.n ^ psr.v) & 1) << 31) | (a >> 1)
    op2 = b if (iu.r.y & 1) else 0
    result = op1 + op2
    r32 = to_u32(result)
    v = ((~(op1 ^ op2)) & (op1 ^ r32)) >> 31 & 1
    c = int(result > 0xFFFFFFFF)
    iu._icc_from_result(r32, v, c)
    iu.r.y = ((a & 1) << 31) | (iu.r.y >> 1)
    return r32, 0


def _tagged_add(iu: IntegerUnit, a: int, b: int, *, trapping: bool):
    result = a + b
    r32 = to_u32(result)
    overflow = ((~(a ^ b)) & (a ^ r32)) >> 31 & 1
    tagged = int((a | b) & 3 != 0)
    v = overflow | tagged
    if trapping and v:
        raise _TagOverflow
    c = int(result > 0xFFFFFFFF)
    iu._icc_from_result(r32, v, c)
    return r32, 0


def _tagged_sub(iu: IntegerUnit, a: int, b: int, *, trapping: bool):
    result = a - b
    r32 = to_u32(result)
    overflow = ((a ^ b) & (a ^ r32)) >> 31 & 1
    tagged = int((a | b) & 3 != 0)
    v = overflow | tagged
    if trapping and v:
        raise _TagOverflow
    c = int(result < 0)
    iu._icc_from_result(r32, v, c)
    return r32, 0


_ALU_HANDLERS = {
    Op3.ADD: lambda iu, a, b: _add(iu, a, b, cc=False),
    Op3.ADDCC: lambda iu, a, b: _add(iu, a, b, cc=True),
    Op3.ADDX: lambda iu, a, b: _add(iu, a, b, cc=False, carry_in=iu.r.psr.c),
    Op3.ADDXCC: lambda iu, a, b: _add(iu, a, b, cc=True, carry_in=iu.r.psr.c),
    Op3.SUB: lambda iu, a, b: _sub(iu, a, b, cc=False),
    Op3.SUBCC: lambda iu, a, b: _sub(iu, a, b, cc=True),
    Op3.SUBX: lambda iu, a, b: _sub(iu, a, b, cc=False, borrow_in=iu.r.psr.c),
    Op3.SUBXCC: lambda iu, a, b: _sub(iu, a, b, cc=True, borrow_in=iu.r.psr.c),
    Op3.AND: _logic(lambda a, b: a & b, False),
    Op3.ANDCC: _logic(lambda a, b: a & b, True),
    Op3.ANDN: _logic(lambda a, b: a & ~b, False),
    Op3.ANDNCC: _logic(lambda a, b: a & ~b, True),
    Op3.OR: _logic(lambda a, b: a | b, False),
    Op3.ORCC: _logic(lambda a, b: a | b, True),
    Op3.ORN: _logic(lambda a, b: a | ~b, False),
    Op3.ORNCC: _logic(lambda a, b: a | ~b, True),
    Op3.XOR: _logic(lambda a, b: a ^ b, False),
    Op3.XORCC: _logic(lambda a, b: a ^ b, True),
    Op3.XNOR: _logic(lambda a, b: ~(a ^ b), False),
    Op3.XNORCC: _logic(lambda a, b: ~(a ^ b), True),
    Op3.SLL: _logic(lambda a, b: a << (b & 31), False),
    Op3.SRL: _logic(lambda a, b: (a & 0xFFFFFFFF) >> (b & 31), False),
    Op3.SRA: _logic(lambda a, b: to_s32(a) >> (b & 31), False),
    Op3.UMUL: lambda iu, a, b: _umul(iu, a, b, cc=False),
    Op3.UMULCC: lambda iu, a, b: _umul(iu, a, b, cc=True),
    Op3.SMUL: lambda iu, a, b: _smul(iu, a, b, cc=False),
    Op3.SMULCC: lambda iu, a, b: _smul(iu, a, b, cc=True),
    Op3.UDIV: lambda iu, a, b: _udiv(iu, a, b, cc=False),
    Op3.UDIVCC: lambda iu, a, b: _udiv(iu, a, b, cc=True),
    Op3.SDIV: lambda iu, a, b: _sdiv(iu, a, b, cc=False),
    Op3.SDIVCC: lambda iu, a, b: _sdiv(iu, a, b, cc=True),
    Op3.MULSCC: _mulscc,
    Op3.TADDCC: lambda iu, a, b: _tagged_add(iu, a, b, trapping=False),
    Op3.TADDCCTV: lambda iu, a, b: _tagged_add(iu, a, b, trapping=True),
    Op3.TSUBCC: lambda iu, a, b: _tagged_sub(iu, a, b, trapping=False),
    Op3.TSUBCCTV: lambda iu, a, b: _tagged_sub(iu, a, b, trapping=True),
}

_RDWR_OPS = {Op3.RDASR, Op3.RDPSR, Op3.RDWIM, Op3.RDTBR,
             Op3.WRASR, Op3.WRPSR, Op3.WRWIM, Op3.WRTBR}

_SIZES = {
    Op3Mem.LDUB: TransferSize.BYTE, Op3Mem.LDSB: TransferSize.BYTE,
    Op3Mem.LDUBA: TransferSize.BYTE, Op3Mem.LDSBA: TransferSize.BYTE,
    Op3Mem.STB: TransferSize.BYTE, Op3Mem.STBA: TransferSize.BYTE,
    Op3Mem.LDUH: TransferSize.HALFWORD, Op3Mem.LDSH: TransferSize.HALFWORD,
    Op3Mem.LDUHA: TransferSize.HALFWORD, Op3Mem.LDSHA: TransferSize.HALFWORD,
    Op3Mem.STH: TransferSize.HALFWORD, Op3Mem.STHA: TransferSize.HALFWORD,
}

_ALIGNMENT = {
    Op3Mem.LDUB: 1, Op3Mem.LDSB: 1, Op3Mem.STB: 1, Op3Mem.LDSTUB: 1,
    Op3Mem.LDUBA: 1, Op3Mem.LDSBA: 1, Op3Mem.STBA: 1, Op3Mem.LDSTUBA: 1,
    Op3Mem.LDUH: 2, Op3Mem.LDSH: 2, Op3Mem.STH: 2,
    Op3Mem.LDUHA: 2, Op3Mem.LDSHA: 2, Op3Mem.STHA: 2,
    Op3Mem.LD: 4, Op3Mem.ST: 4, Op3Mem.SWAP: 4, Op3Mem.LDA: 4, Op3Mem.STA: 4,
    Op3Mem.SWAPA: 4, Op3Mem.LDF: 4, Op3Mem.STF: 4, Op3Mem.LDFSR: 4,
    Op3Mem.STFSR: 4,
    Op3Mem.LDD: 8, Op3Mem.STD: 8, Op3Mem.LDDA: 8, Op3Mem.STDA: 8,
    Op3Mem.LDDF: 8, Op3Mem.STDF: 8,
}
