"""The windowed, SEU-protected register file (paper section 4.4).

The SPARC architecture uses windows of 32 registers (16 overlapping); with 8
windows that is 8 x 16 + 8 globals = 136 words of 32 bits, the "136x32" of
Table 1.  Each word can be protected with one parity bit, two parity bits or
a (32,7) BCH checksum.  Check bits are generated in the write stage and
stored with the data; reads return the *raw* stored word, and the check is
performed in the execute stage so it costs nothing in the decode stage.

Two physical implementations are modelled:

* a true three-port RAM (``duplicated=False``): BCH corrects errors itself;
  parity can only detect, so with parity every detected error is
  uncorrectable (register error trap);
* two parallel two-port RAMs with write ports tied together
  (``duplicated=True``): the cheap parity code becomes *correcting*, because
  a word that fails parity in one RAM is repaired by copying from the other
  -- if the second copy also fails, the error is uncorrectable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import ConfigurationError, InjectionError, StateError
from repro.ft.protection import Codec, ErrorKind, ProtectionScheme, make_codec


@dataclass(frozen=True)
class RegfileCheck:
    """Outcome of the execute-stage check of one operand read."""

    kind: ErrorKind  # NONE / CORRECTABLE / DETECTED(=uncorrectable)
    physical: int  # physical register index (for the correction pass)
    data: int  # corrected data when CORRECTABLE, raw data otherwise


class RegisterFile:
    """The windowed integer register file with configurable protection."""

    def __init__(self, nwindows: int = 8,
                 protection: ProtectionScheme = ProtectionScheme.NONE,
                 *, duplicated: bool = False) -> None:
        if duplicated and protection not in (ProtectionScheme.PARITY,
                                             ProtectionScheme.DUAL_PARITY):
            raise ConfigurationError("duplicated register file requires parity")
        self.nwindows = nwindows
        self.protection = protection
        self.duplicated = duplicated
        self.codec: Codec = make_codec(protection)  # state: wiring -- stateless coder, derived from protection
        self.words = nwindows * 16 + 8
        self._copies = 2 if duplicated else 1
        self._data: List[List[int]] = [[0] * self.words for _ in range(self._copies)]
        self._check: List[List[int]] = [[0] * self.words for _ in range(self._copies)]
        #: Physical words whose stored check bits may disagree with the
        #: data (in any copy).  Writes always generate matching check bits,
        #: so only fault injection can create a mismatch; the per-operand
        #: execute-stage check skips the re-encode for clean words.
        self._suspect: set = set()

    # -- window mapping -----------------------------------------------------------

    def physical_index(self, cwp: int, reg: int) -> int:
        """Map (window, architectural register 0..31) to a physical word.

        Globals are physical 0..7.  Window registers overlap: the outs of
        window ``w`` are the ins of window ``w - 1``.
        """
        if not 0 <= reg <= 31:
            raise InjectionError(f"register {reg} out of range")
        if reg < 8:
            return reg
        return 8 + ((cwp * 16) + (reg - 8)) % (self.nwindows * 16)

    # -- architectural access ---------------------------------------------------------

    def read_raw(self, cwp: int, reg: int) -> Tuple[int, int, int]:
        """Decode-stage read: raw (data, check, physical index), no checking.

        ``%g0`` reads as zero and is never checked (it is not a real RAM
        word on the read path).
        """
        if reg == 0:
            return 0, 0, 0
        physical = self.physical_index(cwp, reg)
        return self._data[0][physical], self._check[0][physical], physical

    def operand_ok(self, cwp: int, reg: int) -> bool:
        """Fast execute-stage check: True when the stored check bits match.

        The pipeline calls this on every source operand of every
        instruction; the full :meth:`check_operand` classification only runs
        when this returns False.
        """
        if reg == 0:
            return True
        if reg < 8:
            physical = reg
        else:
            physical = 8 + ((cwp * 16) + (reg - 8)) % (self.nwindows * 16)
        if physical not in self._suspect:
            return True
        data = self._data[0]
        check = self._check[0]
        if self.codec.encode(data[physical]) != check[physical]:
            return False
        if self.duplicated:
            return self.codec.encode(self._data[1][physical]) == self._check[1][physical]
        return True

    def check_operand(self, cwp: int, reg: int) -> RegfileCheck:
        """Execute-stage check of one source operand.

        Classification follows section 4.4:

        * BCH: single error CORRECTABLE, double DETECTED;
        * parity + duplicated RAMs: any detected error is CORRECTABLE (the
          copy repairs it) -- unless the copy is also bad, then DETECTED;
        * parity + three-port RAM: any detected error is DETECTED
          (uncorrectable, register error trap).
        """
        if reg == 0:
            return RegfileCheck(ErrorKind.NONE, 0, 0)
        physical = self.physical_index(cwp, reg)
        data = self._data[0][physical]
        result = self.codec.check(data, self._check[0][physical])
        if result.kind is ErrorKind.NONE:
            if self.duplicated:
                # Both RAMs are read (and checked) in parallel; an error in
                # the second copy is corrected by copying from the first.
                copy = self.codec.check(self._data[1][physical],
                                        self._check[1][physical])
                if copy.kind is not ErrorKind.NONE:
                    return RegfileCheck(ErrorKind.CORRECTABLE, physical, data)
            return RegfileCheck(ErrorKind.NONE, physical, data)
        if result.kind is ErrorKind.CORRECTABLE:  # BCH located the bit
            return RegfileCheck(ErrorKind.CORRECTABLE, physical, result.data)
        if self.duplicated:
            copy = self.codec.check(self._data[1][physical], self._check[1][physical])
            if copy.kind is ErrorKind.NONE:
                return RegfileCheck(ErrorKind.CORRECTABLE, physical,
                                    self._data[1][physical])
            return RegfileCheck(ErrorKind.DETECTED, physical, data)
        return RegfileCheck(ErrorKind.DETECTED, physical, data)

    def correct(self, check: RegfileCheck) -> None:
        """Write the corrected value back (the pipeline-restart repair).

        "The erroneous operand data is corrected and written back to the
        register file (instead of the erroneous instruction result)."
        """
        if check.kind is not ErrorKind.CORRECTABLE:
            raise InjectionError("correct() called without a correctable error")
        self._store(check.physical, check.data)

    def write(self, cwp: int, reg: int, value: int) -> None:
        """Write-back-stage write; check bits generated simultaneously."""
        if reg == 0:
            return  # writes to %g0 are discarded
        self._store(self.physical_index(cwp, reg), value & 0xFFFFFFFF)

    def _store(self, physical: int, value: int) -> None:
        check = self.codec.encode(value)
        for copy in range(self._copies):
            self._data[copy][physical] = value
            self._check[copy][physical] = check
        if self._suspect:
            self._suspect.discard(physical)

    # -- state capture -------------------------------------------------------------------

    def capture(self) -> dict:
        """Bit-exact stored state across all physical copies."""
        return {
            "data": tuple(tuple(copy) for copy in self._data),
            "check": tuple(tuple(copy) for copy in self._check),
            "suspect": tuple(sorted(self._suspect)),
        }

    def restore(self, state: dict) -> None:
        data, check = state["data"], state["check"]
        if len(data) != self._copies or any(len(c) != self.words for c in data):
            raise StateError("register-file snapshot geometry mismatch")
        self._data = [list(copy) for copy in data]
        self._check = [list(copy) for copy in check]
        self._suspect = set(state["suspect"])

    # -- fault injection -----------------------------------------------------------------

    @property
    def bits_per_word(self) -> int:
        return 32 + self.protection.check_bits

    @property
    def total_bits(self) -> int:
        """Stored bits across all copies (the beam sees the physical RAM)."""
        return self.words * self.bits_per_word * self._copies

    def inject(self, physical: int, bit: int, copy: int = 0) -> None:
        """Flip one stored bit of one physical word (data 0..31, then check)."""
        if not 0 <= physical < self.words:
            raise InjectionError(f"physical register {physical} out of range")
        if not 0 <= copy < self._copies:
            raise InjectionError(f"register file copy {copy} out of range")
        if 0 <= bit < 32:
            self._data[copy][physical] ^= 1 << bit
        elif 32 <= bit < self.bits_per_word:
            self._check[copy][physical] ^= 1 << (bit - 32)
        else:
            raise InjectionError(f"bit {bit} out of range")
        self._suspect.add(physical)

    def inject_flat(self, flat_bit: int) -> Tuple[int, int, int]:
        """Flip the ``flat_bit``-th stored bit; returns (copy, physical, bit)."""
        if not 0 <= flat_bit < self.total_bits:
            raise InjectionError("flat bit outside register file")
        per_copy = self.words * self.bits_per_word
        copy, rest = divmod(flat_bit, per_copy)
        physical, bit = divmod(rest, self.bits_per_word)
        self.inject(physical, bit, copy)
        return copy, physical, bit

    # -- diagnostics ------------------------------------------------------------------------

    def scrub_all(self) -> Tuple[int, int]:
        """Check-and-correct every word (models the task-switch stack writes
        of section 4.8 that flush latent errors).  Returns (corrected,
        uncorrectable) counts."""
        corrected = uncorrectable = 0
        for physical in range(self.words):
            data = self._data[0][physical]
            result = self.codec.check(data, self._check[0][physical])
            if result.kind is ErrorKind.NONE:
                if self.duplicated:
                    copy = self.codec.check(self._data[1][physical],
                                            self._check[1][physical])
                    if copy.kind is not ErrorKind.NONE:
                        self._store(physical, data)
                        corrected += 1
                continue
            if result.kind is ErrorKind.CORRECTABLE:
                self._store(physical, result.data)
                corrected += 1
            elif self.duplicated:
                copy = self.codec.check(self._data[1][physical],
                                        self._check[1][physical])
                if copy.kind is ErrorKind.NONE:
                    self._store(physical, self._data[1][physical])
                    corrected += 1
                else:
                    uncorrectable += 1
            else:
                uncorrectable += 1
        return corrected, uncorrectable

    def window_view(self, cwp: int) -> List[int]:
        """The 32 architectural registers visible in window ``cwp``."""
        view = []
        for reg in range(32):
            data, _check, _physical = self.read_raw(cwp, reg)
            view.append(data)
        return view
