"""The SPARC V8 special registers: PSR, WIM, TBR and Y.

These are synchronous flip-flops in hardware (not RAM cells), so they live
in the :class:`~repro.ft.tmr.FlipFlopBank` and are TMR-protected in the FT
configuration -- an SEU in the PSR is voted away before it can change the
processor mode.
"""

from __future__ import annotations

from repro.ft.tmr import FlipFlopBank

#: PSR implementation/version fields for this model.
PSR_IMPL = 0xF
PSR_VER = 0x3


class PSR:
    """The Processor State Register, bit-accurate over a flip-flop register.

    Layout (SPARC V8 manual 4.2):  impl[31:28] ver[27:24] icc[23:20]
    reserved[19:14] EC[13] EF[12] PIL[11:8] S[7] PS[6] ET[5] CWP[4:0].
    """

    def __init__(self, bank: FlipFlopBank, nwindows: int) -> None:
        self.nwindows = nwindows
        # Reset: supervisor mode, traps disabled, window 0.
        self._reg = bank.register("iu.psr", 32, reset=(1 << 7))

    # -- raw access ------------------------------------------------------------

    @property
    def value(self) -> int:
        return (self._reg.value & 0x00FFFFFF) | (PSR_IMPL << 28) | (PSR_VER << 24)

    def write(self, value: int) -> None:
        """WRPSR: impl/ver are read-only; reserved bits read as zero."""
        self._reg.load(value & 0x00FFFFFF)

    # -- condition codes ----------------------------------------------------------

    @property
    def icc(self) -> int:
        """NZVC as a 4-bit field (N = bit 3)."""
        return (self._reg.value >> 20) & 0xF

    @icc.setter
    def icc(self, nzvc: int) -> None:
        self._reg.load((self._reg.value & ~(0xF << 20)) | ((nzvc & 0xF) << 20))

    @property
    def n(self) -> int:
        return (self._reg.value >> 23) & 1

    @property
    def z(self) -> int:
        return (self._reg.value >> 22) & 1

    @property
    def v(self) -> int:
        return (self._reg.value >> 21) & 1

    @property
    def c(self) -> int:
        return (self._reg.value >> 20) & 1

    # -- mode fields -----------------------------------------------------------------

    def _get(self, shift: int, mask: int) -> int:
        return (self._reg.value >> shift) & mask

    def _set(self, shift: int, mask: int, value: int) -> None:
        self._reg.load((self._reg.value & ~(mask << shift)) | ((value & mask) << shift))

    @property
    def ef(self) -> int:
        """FPU enable."""
        return self._get(12, 1)

    @ef.setter
    def ef(self, value: int) -> None:
        self._set(12, 1, value)

    @property
    def pil(self) -> int:
        """Processor interrupt level: interrupts at or below are masked."""
        return self._get(8, 0xF)

    @pil.setter
    def pil(self, value: int) -> None:
        self._set(8, 0xF, value)

    @property
    def s(self) -> int:
        """Supervisor mode."""
        return self._get(7, 1)

    @s.setter
    def s(self, value: int) -> None:
        self._set(7, 1, value)

    @property
    def ps(self) -> int:
        """Previous supervisor (saved by traps, restored by RETT)."""
        return self._get(6, 1)

    @ps.setter
    def ps(self, value: int) -> None:
        self._set(6, 1, value)

    @property
    def et(self) -> int:
        """Enable traps.  A trap with ET = 0 puts the processor in error mode."""
        return self._get(5, 1)

    @et.setter
    def et(self, value: int) -> None:
        self._set(5, 1, value)

    @property
    def cwp(self) -> int:
        """Current window pointer."""
        return self._get(0, 0x1F)

    @cwp.setter
    def cwp(self, value: int) -> None:
        self._set(0, 0x1F, value % self.nwindows)


class SpecialRegisters:
    """WIM, TBR, Y and the PC pair, all in the flip-flop bank."""

    def __init__(self, bank: FlipFlopBank, nwindows: int, reset_pc: int = 0) -> None:
        self.psr = PSR(bank, nwindows)  # state: wiring -- PSR fields live in the ffbank
        self._wim = bank.register("iu.wim", nwindows)
        self._tbr = bank.register("iu.tbr", 32)
        self._y = bank.register("iu.y", 32)
        self._pc = bank.register("iu.pc", 32, reset=reset_pc)
        self._npc = bank.register("iu.npc", 32, reset=(reset_pc + 4) & 0xFFFFFFFF)
        self.nwindows = nwindows
        self.reset_pc = reset_pc

    def reset(self) -> None:
        """Reset-line values: supervisor mode with traps disabled, fetch
        from the reset vector.  WIM, TBR and Y are architecturally
        undefined at reset and left untouched (boot code writes them)."""
        self.psr.write(1 << 7)
        self._pc.load(self.reset_pc & 0xFFFFFFFF)
        self._npc.load((self.reset_pc + 4) & 0xFFFFFFFF)

    @property
    def wim(self) -> int:
        return self._wim.value

    @property
    def tbr_read(self) -> int:
        """RDTBR value: base address + trap type, low four bits zero."""
        return self._tbr.value & 0xFFFFFFF0

    @wim.setter
    def wim(self, value: int) -> None:
        self._wim.load(value & ((1 << self.nwindows) - 1))

    @property
    def tbr(self) -> int:
        return self.tbr_read

    @tbr.setter
    def tbr(self, value: int) -> None:
        """WRTBR writes only the trap base address (bits 31:12)."""
        self._tbr.load((value & 0xFFFFF000) | (self._tbr.value & 0xFF0))

    @property
    def tbr_raw(self) -> int:
        return self._tbr.value

    def set_tt(self, tt: int) -> None:
        """Hardware sets the trap type field when a trap is taken."""
        self._tbr.load((self._tbr.value & 0xFFFFF000) | ((tt & 0xFF) << 4))

    @property
    def trap_vector(self) -> int:
        """The address traps jump to: TBA | tt << 4."""
        return self._tbr.value & 0xFFFFFFF0

    @property
    def y(self) -> int:
        return self._y.value

    @y.setter
    def y(self, value: int) -> None:
        self._y.load(value & 0xFFFFFFFF)

    @property
    def pc(self) -> int:
        return self._pc.value

    @pc.setter
    def pc(self, value: int) -> None:
        self._pc.load(value & 0xFFFFFFFF)

    @property
    def npc(self) -> int:
        return self._npc.value

    @npc.setter
    def npc(self, value: int) -> None:
        self._npc.load(value & 0xFFFFFFFF)
