"""Memory write protection (the LEON memory controller's WP registers).

Space software protects its code and constant areas against *wild writes*
-- stores issued by a processor that has gone off the rails after an
uncorrected upset.  The LEON memory controller provides write-protection
units: address-range guards that turn a store into an AHB ERROR response
(which reaches software as a precise ``data_store_error`` trap) instead of
letting it corrupt memory.

Two guard modes per unit, as on LEON-2:

* ``PROTECT_INSIDE``: writes inside [start, end) are blocked;
* ``PROTECT_OUTSIDE``: only writes inside the range are *allowed* --
  everything else is blocked (a write-allow window for the data segment).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

from repro.errors import ConfigurationError


class WpMode(enum.Enum):
    DISABLED = "disabled"
    PROTECT_INSIDE = "protect-inside"
    PROTECT_OUTSIDE = "protect-outside"


@dataclass
class WriteProtectUnit:
    """One programmable write-protection range."""

    start: int = 0
    end: int = 0
    mode: WpMode = WpMode.DISABLED
    #: Diagnostic: blocked write attempts (address of the last one).
    violations: int = 0
    last_violation: int = 0

    def configure(self, start: int, end: int, mode: WpMode) -> None:
        if end < start:
            raise ConfigurationError("write-protect range end before start")
        self.start = start & ~3
        self.end = end & ~3
        self.mode = mode

    def blocks(self, address: int) -> bool:
        if self.mode is WpMode.DISABLED:
            return False
        inside = self.start <= address < self.end
        blocked = inside if self.mode is WpMode.PROTECT_INSIDE else not inside
        if blocked:
            self.violations += 1
            self.last_violation = address
        return blocked


class WriteProtector:
    """The set of write-protection units guarding the memory bus."""

    def __init__(self, units: int = 2) -> None:
        if units < 1:
            raise ConfigurationError("need at least one write-protect unit")
        self.units: List[WriteProtectUnit] = [WriteProtectUnit()
                                              for _ in range(units)]

    def blocks(self, address: int) -> bool:
        """True when any unit vetoes a write at ``address``.

        With multiple active units a write survives only if *no* unit
        blocks it (each unit is an independent guard).
        """
        # Evaluate all units so violation counters stay accurate.
        verdicts = [unit.blocks(address) for unit in self.units]
        return any(verdicts)

    @property
    def total_violations(self) -> int:
        return sum(unit.violations for unit in self.units)

    def protect_range(self, start: int, end: int, *, unit: int = 0) -> None:
        """Convenience: make [start, end) read-only."""
        self.units[unit].configure(start, end, WpMode.PROTECT_INSIDE)

    def allow_only(self, start: int, end: int, *, unit: int = 0) -> None:
        """Convenience: allow writes only inside [start, end)."""
        self.units[unit].configure(start, end, WpMode.PROTECT_OUTSIDE)

    def disable(self, *, unit: int = 0) -> None:
        self.units[unit].mode = WpMode.DISABLED

    # -- state capture ------------------------------------------------------

    def capture(self) -> dict:
        """Programmed ranges; violation tallies go under ``"diag"``."""
        return {
            "units": tuple((unit.start, unit.end, unit.mode.value)
                           for unit in self.units),
            "diag": {
                "violations": tuple(unit.violations for unit in self.units),
                "last_violation": tuple(unit.last_violation
                                        for unit in self.units),
            },
        }

    def restore(self, state: dict) -> None:
        units = state["units"]
        if len(units) != len(self.units):
            raise ConfigurationError(
                f"snapshot has {len(units)} write-protect units, "
                f"expected {len(self.units)}")
        for unit, (start, end, mode) in zip(self.units, units):
            unit.start = int(start)
            unit.end = int(end)
            unit.mode = WpMode(mode)
        diag = state.get("diag") or {}
        violations = diag.get("violations", (0,) * len(self.units))
        last = diag.get("last_violation", (0,) * len(self.units))
        for unit, count, address in zip(self.units, violations, last):
            unit.violations = int(count)
            unit.last_violation = int(address)
