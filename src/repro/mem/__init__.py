"""External memory and the on-chip memory controller (paper sections 3, 4.6).

The memory controller decodes PROM, SRAM and memory-mapped I/O areas on the
AHB bus.  In the FT configuration every stored word carries a (32,7) BCH
codeword maintained by the on-chip EDAC: single errors are corrected during
cache refill with no timing penalty, double errors return an AHB ERROR
response which the caches convert into a missing valid bit (sub-blocking).
"""

from repro.mem.memctrl import MemoryBank, MemoryController
from repro.mem.storage import ExternalMemory
from repro.mem.writeprotect import WpMode, WriteProtector, WriteProtectUnit

__all__ = [
    "ExternalMemory",
    "MemoryBank",
    "MemoryController",
    "WpMode",
    "WriteProtectUnit",
    "WriteProtector",
]
