"""The memory controller: PROM / SRAM / I/O decode with the on-chip EDAC.

Each memory area is an AHB slave (:class:`MemoryBank`).  Reads pass through
the EDAC (when enabled): single errors are corrected in the delivered data
*and scrubbed back to memory*, double errors return an AHB ERROR response.
Sub-word writes are read-modify-write so the check bits stay consistent; an
uncorrectable word under a sub-word write also returns ERROR.

Timing: the first access costs ``1 + waitstates`` cycles; burst beats after
the first cost one cycle each (the controller streams sequential words),
which is what makes cache-line refill cheap.  EDAC adds no cycles -- the
paper: "error-detection and correction is done during the re-fill of the
caches without timing penalties".
"""

from __future__ import annotations

from typing import List, Optional

from repro.amba.ahb import AhbSlave, BusResult, TransferSize
from repro.core.config import MemoryConfig
from repro.ft.edac import Edac, EdacStatus
from repro.mem.storage import ExternalMemory
from repro.mem.writeprotect import WriteProtector


class MemoryBank(AhbSlave):
    """One decoded memory area (PROM, SRAM or I/O) on the AHB bus."""

    def __init__(self, name: str, base: int, memory: ExternalMemory,
                 waitstates: int, edac: Edac, *, read_only: bool = False,
                 write_protector: Optional[WriteProtector] = None) -> None:
        super().__init__(name, base, memory.size_bytes)
        self.memory = memory
        self.waitstates = waitstates
        self.edac = edac
        self.read_only = read_only
        self.write_protector = write_protector

    # -- helpers ---------------------------------------------------------------

    def _read_word(self, offset: int) -> BusResult:
        data, check = self.memory.read_raw(offset)
        if not self.memory.edac:
            return BusResult(data=data, cycles=1 + self.waitstates)
        result = self.edac.read(data, check)
        if result.status is EdacStatus.UNCORRECTABLE:
            return BusResult(data=data, cycles=1 + self.waitstates, error=True)
        if result.status is EdacStatus.CORRECTED:
            # Scrub: write the corrected word back so the error cannot pair
            # up with a later upset.
            self.memory.write_raw(offset, result.data, result.check)
            return BusResult(data=result.data, cycles=1 + self.waitstates, corrected=1)
        return BusResult(data=result.data, cycles=1 + self.waitstates)

    # -- AHB slave interface ----------------------------------------------------

    def ahb_read(self, address: int, size: TransferSize) -> BusResult:
        offset = (address - self.base) & ~3
        result = self._read_word(offset)
        if result.error or size is TransferSize.WORD:
            return result
        byte_offset = (address - self.base) & 3
        if size is TransferSize.HALFWORD:
            shift = (2 - byte_offset) * 8
            result.data = (result.data >> shift) & 0xFFFF
        else:  # BYTE
            shift = (3 - byte_offset) * 8
            result.data = (result.data >> shift) & 0xFF
        return result

    def ahb_write(self, address: int, value: int, size: TransferSize) -> BusResult:
        if self.read_only:
            return BusResult(error=True, cycles=1 + self.waitstates)
        if self.write_protector is not None and self.write_protector.blocks(address):
            # Wild-write guard: the store gets an ERROR response, which the
            # processor takes as a precise data_store_error trap.
            return BusResult(error=True, cycles=1 + self.waitstates)
        offset = (address - self.base) & ~3
        if size is TransferSize.WORD:
            self.memory.write_word(offset, value)
            return BusResult(cycles=1 + self.waitstates)
        # Sub-word store: read-modify-write to keep the check bits whole.
        current = self._read_word(offset)
        if current.error:
            return BusResult(error=True, cycles=current.cycles)
        byte_offset = (address - self.base) & 3
        if size is TransferSize.HALFWORD:
            shift = (2 - byte_offset) * 8
            mask = 0xFFFF << shift
            merged = (current.data & ~mask) | ((value & 0xFFFF) << shift)
        else:  # BYTE
            shift = (3 - byte_offset) * 8
            mask = 0xFF << shift
            merged = (current.data & ~mask) | ((value & 0xFF) << shift)
        self.memory.write_word(offset, merged)
        return BusResult(cycles=1 + self.waitstates, corrected=current.corrected)

    def ahb_read_burst(self, address: int, nwords: int) -> List[BusResult]:
        offset = (address - self.base) & ~3
        results = []
        for beat in range(nwords):
            result = self._read_word(offset + 4 * beat)
            # Streaming: wait states only on the first beat.
            if beat:
                result.cycles = 1
            results.append(result)
        return results


class MemoryController:
    """Builds the PROM, SRAM and I/O banks from a :class:`MemoryConfig`.

    The I/O area models external memory-mapped devices; it is never EDAC
    protected and never cached (the cache controllers know its range).
    """

    def __init__(self, config: MemoryConfig) -> None:
        self.config = config
        self.edac = Edac()  # state: wiring -- stateless coder shared by the banks
        self.write_protector = WriteProtector(units=2)
        self.prom_memory = ExternalMemory("prom", config.prom_bytes, edac=config.edac)
        self.sram_memory = ExternalMemory("sram", config.sram_bytes, edac=config.edac)
        self.io_memory = ExternalMemory("io", config.io_bytes, edac=False)
        self.prom = MemoryBank("prom", config.prom_base, self.prom_memory,  # state: wiring -- bank decode logic; words live in *_memory
                               config.prom_waitstates, self.edac,
                               write_protector=self.write_protector)
        self.sram = MemoryBank("sram", config.sram_base, self.sram_memory,  # state: wiring -- bank decode logic; words live in *_memory
                               config.sram_waitstates, self.edac,
                               write_protector=self.write_protector)
        self.io = MemoryBank("io", config.io_base, self.io_memory,  # state: wiring -- bank decode logic; words live in *_memory
                             config.prom_waitstates, self.edac)
        # Bound constants for the per-fetch is_cacheable test (the ranges
        # are fixed at construction; two compares beat four attribute
        # loads plus two method calls on every instruction).
        self._prom_lo = config.prom_base
        self._prom_hi = config.prom_base + config.prom_bytes
        self._sram_lo = config.sram_base
        self._sram_hi = config.sram_base + config.sram_bytes

    def banks(self) -> List[MemoryBank]:
        return [self.prom, self.sram, self.io]

    def capture(self) -> dict:
        """All three storage arrays plus the write-protect programming."""
        return {
            "prom": self.prom_memory.capture(),
            "sram": self.sram_memory.capture(),
            "io": self.io_memory.capture(),
            "writeprotect": self.write_protector.capture(),
        }

    def restore(self, state: dict) -> None:
        self.prom_memory.restore(state["prom"])
        self.sram_memory.restore(state["sram"])
        self.io_memory.restore(state["io"])
        self.write_protector.restore(state["writeprotect"])

    def is_cacheable(self, address: int) -> bool:
        """Only PROM and SRAM are cacheable; I/O and APB space are not."""
        return (self._prom_lo <= address < self._prom_hi
                or self._sram_lo <= address < self._sram_hi)
