"""Raw external-memory storage: data words plus EDAC check bits.

The storage keeps the *stored* bits, not the logical value: fault injection
flips bits here and the EDAC discovers them on the next read, exactly like
SEUs in a physical SRAM.  Check bits are only maintained when EDAC is
enabled; without EDAC the check plane is unused.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, InjectionError, StateError
from repro.ft.bch import bch_encode


class ExternalMemory:
    """One external memory array (a PROM or SRAM bank).

    Words are stored big-endian with respect to byte addressing, i.e. byte 0
    of a word is its most significant byte (SPARC is big-endian).
    """

    def __init__(self, name: str, size_bytes: int, *, edac: bool = False) -> None:
        if size_bytes <= 0 or size_bytes % 4:
            raise ConfigurationError(f"memory {name!r} size must be a positive word multiple")
        self.name = name
        self.size_bytes = size_bytes
        self.edac = edac
        self._words = np.zeros(size_bytes // 4, dtype=np.uint32)
        self._check = np.zeros(size_bytes // 4, dtype=np.uint8)

    @property
    def words(self) -> int:
        return len(self._words)

    @property
    def total_bits(self) -> int:
        """Stored bits, including the check plane when EDAC is on."""
        per_word = 39 if self.edac else 32
        return self.words * per_word

    def _index(self, address: int) -> int:
        if address % 4:
            raise InjectionError(f"word address {address:#x} not aligned")
        index = address // 4
        if not 0 <= index < self.words:
            raise InjectionError(f"address {address:#x} outside {self.name}")
        return index

    # -- functional access (the memory controller's view) --------------------

    def read_raw(self, address: int) -> tuple:
        """The stored (data, check) pair at a word-aligned offset."""
        index = self._index(address)
        return int(self._words[index]), int(self._check[index])

    def write_word(self, address: int, value: int) -> None:
        """Store a word, regenerating its check bits."""
        index = self._index(address)
        value &= 0xFFFFFFFF
        self._words[index] = value
        if self.edac:
            self._check[index] = bch_encode(value)

    def write_raw(self, address: int, data: int, check: int) -> None:
        """Store raw data + check bits (EDAC bypass, used by diagnostics)."""
        index = self._index(address)
        self._words[index] = data & 0xFFFFFFFF
        self._check[index] = check & 0x7F

    def load_image(self, address: int, image: bytes) -> None:
        """Load a big-endian byte image (a :class:`~repro.sparc.asm.Program`)."""
        if len(image) % 4:
            image = image + b"\x00" * (4 - len(image) % 4)
        for offset in range(0, len(image), 4):
            word = int.from_bytes(image[offset:offset + 4], "big")
            self.write_word(address + offset, word)

    # -- state capture --------------------------------------------------------

    def capture(self) -> dict:
        """Raw stored planes as bytes (one memcpy each, compact to pickle)."""
        return {
            "words": self._words.tobytes(),
            "check": self._check.tobytes(),
        }

    def restore(self, state: dict) -> None:
        words = np.frombuffer(state["words"], dtype=np.uint32)
        check = np.frombuffer(state["check"], dtype=np.uint8)
        if len(words) != self.words or len(check) != self.words:
            raise StateError(
                f"memory {self.name!r}: snapshot has {len(words)} words, "
                f"expected {self.words}")
        self._words = words.copy()
        self._check = check.copy()

    # -- fault injection ------------------------------------------------------

    def inject(self, address: int, bit: int) -> None:
        """Flip one stored bit.  Bits 0..31 are data, 32..38 are check bits."""
        index = self._index(address)
        if 0 <= bit < 32:
            self._words[index] = int(self._words[index]) ^ (1 << bit)
        elif 32 <= bit < 39:
            self._check[index] = int(self._check[index]) ^ (1 << (bit - 32))
        else:
            raise InjectionError(f"bit {bit} out of range for a 39-bit codeword")

    def inject_flat(self, flat_bit: int) -> tuple:
        """Flip the ``flat_bit``-th stored bit; returns (address, bit)."""
        per_word = 39 if self.edac else 32
        if not 0 <= flat_bit < self.words * per_word:
            raise InjectionError("flat bit index outside memory")
        index, bit = divmod(flat_bit, per_word)
        self.inject(index * 4, bit)
        return index * 4, bit
