"""The FT error-monitoring counters (paper section 6).

"The register file and cache memories are provided with on-chip
error-monitoring counters that increment automatically after each corrected
SEU error.  The test software continuously reports the value of these
counters to an external host computer."

Registers (relative offsets, all read-only; any write clears all counters):

    0x00  ITE   instruction cache tag errors corrected
    0x04  IDE   instruction cache data errors corrected
    0x08  DTE   data cache tag errors corrected
    0x0C  DDE   data cache data errors corrected
    0x10  RFE   register file errors corrected
    0x14  total
    0x18  EDAC corrections in external memory
"""

from __future__ import annotations

from repro.amba.apb import ApbSlave
from repro.core.statistics import ErrorCounters


class ErrorMonitor(ApbSlave):
    """APB window onto the hardware :class:`ErrorCounters`."""

    def __init__(self, counters: ErrorCounters, offset: int = 0xB0) -> None:
        super().__init__("errmon", offset, 0x20)
        self.counters = counters

    def apb_read(self, offset: int) -> int:
        counters = self.counters
        if offset == 0x00:
            return counters.ite
        if offset == 0x04:
            return counters.ide
        if offset == 0x08:
            return counters.dte
        if offset == 0x0C:
            return counters.dde
        if offset == 0x10:
            return counters.rfe
        if offset == 0x14:
            return counters.total
        if offset == 0x18:
            return counters.edac_corrected
        return 0

    def apb_write(self, offset: int, value: int) -> None:
        # Clears only the counters this block owns; the uncorrectable-trap
        # tallies are not monitor registers and survive a software clear.
        self.counters.clear_monitor()
