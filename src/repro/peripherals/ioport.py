"""The parallel I/O port.

Registers (relative offsets):

    0x00  data       (read: input pins; write: output latch)
    0x04  direction  (bit n = 1 drives pin n as output)
    0x08  interrupt configuration (which pin raises which level; simplified
          to: bit 0 enables an interrupt on any input edge)

The campaign harness uses the port as the paper's test board used the LEDs
and compare-error line: software writes progress codes that the host can
sample without touching the UART.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.amba.apb import ApbSlave
from repro.ft.tmr import FlipFlopBank


class IoPort(ApbSlave):
    """16-bit bidirectional parallel port."""

    def __init__(self, offset: int = 0xA0, *, irq_level: int = 4,
                 raise_irq: Optional[Callable[[int], None]] = None,
                 ffbank: Optional[FlipFlopBank] = None) -> None:
        super().__init__("ioport", offset, 0x10)
        bank = ffbank if ffbank is not None else FlipFlopBank(tmr=False)
        self.irq_level = irq_level
        self._raise_irq = raise_irq or (lambda level: None)
        self._output = bank.register("ioport.output", 16)
        self._direction = bank.register("ioport.direction", 16)
        self._irq_config = bank.register("ioport.irqcfg", 1)
        self._input_pins = 0

    # -- host-side test interface -------------------------------------------------

    def drive_inputs(self, value: int) -> None:
        """Set the external input pin levels."""
        old = self._input_pins
        self._input_pins = value & 0xFFFF
        if self._irq_config.value & 1 and old != self._input_pins:
            self._raise_irq(self.irq_level)

    def capture(self) -> dict:
        return {"input_pins": self._input_pins}

    def restore(self, state: dict) -> None:
        self._input_pins = int(state["input_pins"])

    @property
    def outputs(self) -> int:
        """Pin levels driven by the chip (output latch masked by direction)."""
        return self._output.value & self._direction.value

    # -- APB interface ---------------------------------------------------------------

    def apb_read(self, offset: int) -> int:
        if offset == 0x00:
            direction = self._direction.value
            return (self._output.value & direction) | (self._input_pins & ~direction)
        if offset == 0x04:
            return self._direction.value
        if offset == 0x08:
            return self._irq_config.value
        return 0

    def apb_write(self, offset: int, value: int) -> None:
        if offset == 0x00:
            self._output.load(value)
        elif offset == 0x04:
            self._direction.load(value)
        elif offset == 0x08:
            self._irq_config.load(value)
