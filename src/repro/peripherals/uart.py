"""The UART: byte-wide serial port with status/control registers.

Registers (relative offsets):

    0x00  data     (write: transmit; read: next received byte)
    0x04  status   (bit 0: data ready, bit 1: TX shift empty, bit 2: TX
                    holding empty, bit 3: RX overrun)
    0x08  control  (bit 0: RX enable, bit 1: TX enable, bit 2: RX irq
                    enable, bit 3: TX irq enable)
    0x0C  scaler   (baud-rate divider)

Transmission is modelled with a cycle-accurate scaler: a byte occupies the
shifter for ``10 * (scaler + 1)`` cycles (8 data bits + start/stop).  The
campaign harness reads :attr:`transmitted` to collect the test program's
console output -- that is the paper's "reports the value of these counters
to an external host computer" channel.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.amba.apb import ApbSlave
from repro.ft.tmr import FlipFlopBank

_STATUS_DATA_READY = 1
_STATUS_TX_SHIFT_EMPTY = 2
_STATUS_TX_HOLD_EMPTY = 4
_STATUS_RX_OVERRUN = 8

_CTRL_RX_ENABLE = 1
_CTRL_TX_ENABLE = 2
_CTRL_RX_IRQ = 4
_CTRL_TX_IRQ = 8


class Uart(ApbSlave):
    """One UART channel."""

    def __init__(self, name: str = "uart1", offset: int = 0x70, *, irq_level: int = 3,
                 raise_irq: Optional[Callable[[int], None]] = None,
                 ffbank: Optional[FlipFlopBank] = None) -> None:
        super().__init__(name, offset, 0x10)
        bank = ffbank if ffbank is not None else FlipFlopBank(tmr=False)
        self.irq_level = irq_level
        self._raise_irq = raise_irq or (lambda level: None)
        self._control = bank.register(f"{name}.control", 4)
        self._scaler = bank.register(f"{name}.scaler", 12)
        self._tx_hold = bank.register(f"{name}.txhold", 8)
        self._tx_shift = bank.register(f"{name}.txshift", 8)
        self._rx_hold = bank.register(f"{name}.rxhold", 8)
        self._status = bank.register(
            f"{name}.status", 4, reset=_STATUS_TX_SHIFT_EMPTY | _STATUS_TX_HOLD_EMPTY
        )
        self._tx_cycles_left = 0
        #: Every byte the UART has transmitted (host-side capture).
        self.transmitted: List[int] = []
        self._rx_queue: List[int] = []

    # -- host-side test interface ------------------------------------------------

    def receive(self, data: bytes) -> None:
        """Feed bytes into the receiver (as if from the external line)."""
        self._rx_queue.extend(data)
        self._pump_rx()

    def transcript(self) -> bytes:
        return bytes(self.transmitted)

    def capture(self) -> dict:
        """Non-ffbank UART state.  The transcript is architectural: the test
        program's console output is part of what the host observes, so an
        effaced run must have transmitted exactly the golden bytes."""
        return {
            "tx_cycles_left": self._tx_cycles_left,
            "transmitted": bytes(self.transmitted),
            "rx_queue": bytes(self._rx_queue),
        }

    def restore(self, state: dict) -> None:
        self._tx_cycles_left = int(state["tx_cycles_left"])
        self.transmitted = list(state["transmitted"])
        self._rx_queue = list(state["rx_queue"])

    def _pump_rx(self) -> None:
        status = self._status.value
        if self._rx_queue and not status & _STATUS_DATA_READY:
            if self._control.value & _CTRL_RX_ENABLE:
                self._rx_hold.load(self._rx_queue.pop(0))
                self._status.load(status | _STATUS_DATA_READY)
                if self._control.value & _CTRL_RX_IRQ:
                    self._raise_irq(self.irq_level)

    # -- APB interface --------------------------------------------------------------

    def apb_read(self, offset: int) -> int:
        if offset == 0x00:
            status = self._status.value
            data = self._rx_hold.value
            self._status.load(status & ~_STATUS_DATA_READY)
            self._pump_rx()
            return data
        if offset == 0x04:
            return self._status.value
        if offset == 0x08:
            return self._control.value
        if offset == 0x0C:
            return self._scaler.value
        return 0

    def apb_write(self, offset: int, value: int) -> None:
        if offset == 0x00:
            self._write_data(value & 0xFF)
        elif offset == 0x08:
            self._control.load(value)
            self._pump_rx()
        elif offset == 0x0C:
            self._scaler.load(value)

    def _write_data(self, byte: int) -> None:
        if not self._control.value & _CTRL_TX_ENABLE:
            return
        status = self._status.value
        if status & _STATUS_TX_SHIFT_EMPTY:
            # Straight into the shifter.
            self._tx_shift.load(byte)
            self._tx_cycles_left = self._frame_cycles()
            self._status.load(status & ~_STATUS_TX_SHIFT_EMPTY)
        elif status & _STATUS_TX_HOLD_EMPTY:
            self._tx_hold.load(byte)
            self._status.load(status & ~_STATUS_TX_HOLD_EMPTY)
        # else: byte lost, as on hardware when software ignores the status.

    def _frame_cycles(self) -> int:
        return 10 * (self._scaler.value + 1)

    def tick(self, cycles: int) -> None:
        while cycles > 0 and not self._status.value & _STATUS_TX_SHIFT_EMPTY:
            step = min(cycles, self._tx_cycles_left)
            self._tx_cycles_left -= step
            cycles -= step
            if self._tx_cycles_left == 0:
                self.transmitted.append(self._tx_shift.value)
                status = self._status.value
                if not status & _STATUS_TX_HOLD_EMPTY:
                    self._tx_shift.load(self._tx_hold.value)
                    self._tx_cycles_left = self._frame_cycles()
                    self._status.load(status | _STATUS_TX_HOLD_EMPTY)
                else:
                    self._status.load(status | _STATUS_TX_SHIFT_EMPTY)
                    if self._control.value & _CTRL_TX_IRQ:
                        self._raise_irq(self.irq_level)
