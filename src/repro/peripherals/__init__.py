"""On-chip peripherals on the APB bus (paper section 3, figure 1).

LEON attaches its simple peripherals -- timers, UARTs, interrupt controller
and I/O port -- to the low-speed APB bus behind the AHB/APB bridge.  The
FT test chip adds the error-monitoring counters the test software reports
to the host during beam campaigns (section 6).

APB register map (offsets relative to the bridge base, LEON-2 style):

    0x00  system registers (cache control 0x14, config 0x24, power-down 0x18)
    0x40  timer unit (timer1, timer2, prescaler, watchdog)
    0x70  UART 1        0x80  UART 2
    0x90  interrupt controller
    0xA0  parallel I/O port
    0xB0  FT error-monitoring counters
    0xD0  DMA engine
"""

from repro.peripherals.dma import DmaEngine
from repro.peripherals.errmon import ErrorMonitor
from repro.peripherals.ioport import IoPort
from repro.peripherals.irqctrl import InterruptController
from repro.peripherals.sysregs import SystemRegisters
from repro.peripherals.timer import TimerUnit
from repro.peripherals.uart import Uart

#: Interrupt levels assigned to on-chip sources (LEON-2 defaults).
IRQ_UART2 = 2
IRQ_UART1 = 3
IRQ_IOPORT = 4
IRQ_TIMER1 = 8
IRQ_TIMER2 = 9

__all__ = [
    "DmaEngine",
    "ErrorMonitor",
    "InterruptController",
    "IoPort",
    "SystemRegisters",
    "TimerUnit",
    "Uart",
    "IRQ_UART1",
    "IRQ_UART2",
    "IRQ_IOPORT",
    "IRQ_TIMER1",
    "IRQ_TIMER2",
]
