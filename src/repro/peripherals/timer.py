"""The timer unit: two 24-bit decrementing timers behind a 10-bit prescaler.

Registers (relative offsets within the unit):

    0x00  timer 1 counter        0x10  timer 2 counter
    0x04  timer 1 reload         0x14  timer 2 reload
    0x08  timer 1 control        0x18  timer 2 control
    0x20  prescaler counter      0x24  prescaler reload
    0x28  watchdog counter (write to refresh; reaching zero asserts the
          watchdog output, normally wired to system reset)

Control bits: 0 = enable, 1 = reload on underflow, 2 = load (write-only,
loads the reload value into the counter).  Underflow raises the timer's
interrupt level.  Timer state lives in the flip-flop bank: a timer counter
is exactly the kind of state-machine register TMR protects, and the kind
the IBM duplicate-pipeline scheme cannot (section 7).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.amba.apb import ApbSlave
from repro.ft.tmr import FlipFlopBank

_CTRL_ENABLE = 1
_CTRL_RELOAD = 2
_CTRL_LOAD = 4

_COUNTER_MASK = 0xFFFFFF
_PRESCALER_MASK = 0x3FF


class _Timer:
    """One 24-bit decrementing timer."""

    def __init__(self, name: str, bank: FlipFlopBank, irq_level: int,
                 raise_irq: Callable[[int], None]) -> None:
        self.counter = bank.register(f"{name}.counter", 24)
        self.reload = bank.register(f"{name}.reload", 24)
        self.control = bank.register(f"{name}.control", 2)
        self.irq_level = irq_level
        self._raise_irq = raise_irq
        self.underflows = 0  # state: diag -- captured by TimerUnit under 'diag'

    def write_control(self, value: int) -> None:
        if value & _CTRL_LOAD:
            self.counter.load(self.reload.value)
        self.control.load(value & (_CTRL_ENABLE | _CTRL_RELOAD))

    def tick(self, ticks: int) -> None:
        control = self.control.value
        if not control & _CTRL_ENABLE or ticks <= 0:
            return
        remaining = self.counter.value
        while ticks > 0:
            if ticks <= remaining:
                remaining -= ticks
                break
            # Underflow: consume (remaining + 1) ticks crossing zero.
            ticks -= remaining + 1
            self.underflows += 1
            self._raise_irq(self.irq_level)
            if control & _CTRL_RELOAD:
                remaining = self.reload.value
            else:
                self.control.load(control & ~_CTRL_ENABLE)
                remaining = _COUNTER_MASK
                break
        self.counter.load(remaining)


class TimerUnit(ApbSlave):
    """Two timers plus the shared prescaler."""

    def __init__(self, offset: int = 0x40, *, irq_levels=(8, 9),
                 raise_irq: Optional[Callable[[int], None]] = None,
                 ffbank: Optional[FlipFlopBank] = None) -> None:
        super().__init__("timers", offset, 0x30)
        bank = ffbank if ffbank is not None else FlipFlopBank(tmr=False)
        raise_irq = raise_irq or (lambda level: None)
        self.timer1 = _Timer("timer1", bank, irq_levels[0], raise_irq)
        self.timer2 = _Timer("timer2", bank, irq_levels[1], raise_irq)
        self.prescaler_counter = bank.register("prescaler.counter", 10)
        self.prescaler_reload = bank.register("prescaler.reload", 10)
        self.watchdog = bank.register("watchdog.counter", 24)
        #: Latched when the watchdog reaches zero (wired to reset on the
        #: real device; the harness observes it).
        self.watchdog_expired = False
        self._residual = 0

    def apb_read(self, offset: int) -> int:
        if offset == 0x00:
            return self.timer1.counter.value
        if offset == 0x04:
            return self.timer1.reload.value
        if offset == 0x08:
            return self.timer1.control.value
        if offset == 0x10:
            return self.timer2.counter.value
        if offset == 0x14:
            return self.timer2.reload.value
        if offset == 0x18:
            return self.timer2.control.value
        if offset == 0x20:
            return self.prescaler_counter.value
        if offset == 0x24:
            return self.prescaler_reload.value
        if offset == 0x28:
            return self.watchdog.value
        return 0

    def apb_write(self, offset: int, value: int) -> None:
        if offset == 0x00:
            self.timer1.counter.load(value & _COUNTER_MASK)
        elif offset == 0x04:
            self.timer1.reload.load(value & _COUNTER_MASK)
        elif offset == 0x08:
            self.timer1.write_control(value)
        elif offset == 0x10:
            self.timer2.counter.load(value & _COUNTER_MASK)
        elif offset == 0x14:
            self.timer2.reload.load(value & _COUNTER_MASK)
        elif offset == 0x18:
            self.timer2.write_control(value)
        elif offset == 0x20:
            self.prescaler_counter.load(value & _PRESCALER_MASK)
        elif offset == 0x24:
            self.prescaler_reload.load(value & _PRESCALER_MASK)
        elif offset == 0x28:
            self.watchdog.load(value & _COUNTER_MASK)
            self.watchdog_expired = False

    def reset_watchdog(self) -> None:
        """System reset disarms the watchdog and clears the expired latch
        (boot software re-arms it once it is running again)."""
        self.watchdog.load(0)
        self.watchdog_expired = False

    def capture(self) -> dict:
        """Non-ffbank timer state (the counters live in the flip-flop bank)."""
        return {
            "residual": self._residual,
            "watchdog_expired": self.watchdog_expired,
            "diag": {"underflows": (self.timer1.underflows,
                                    self.timer2.underflows)},
        }

    def restore(self, state: dict) -> None:
        self._residual = int(state["residual"])
        self.watchdog_expired = bool(state["watchdog_expired"])
        diag = state.get("diag") or {}
        underflows = diag.get("underflows", (0, 0))
        self.timer1.underflows = int(underflows[0])
        self.timer2.underflows = int(underflows[1])

    def tick(self, cycles: int) -> None:
        """Advance by processor cycles; the prescaler divides them into
        timer ticks."""
        watchdog_live = self.watchdog.value > 0
        if not watchdog_live and \
                not (self.timer1.control.value
                     | self.timer2.control.value) & _CTRL_ENABLE:
            return  # nothing counting: skip the prescaler arithmetic
        period = self.prescaler_reload.value + 1
        total = self._residual + cycles
        ticks, self._residual = divmod(total, period)
        if not ticks:
            return
        self.timer1.tick(ticks)
        self.timer2.tick(ticks)
        if watchdog_live:
            remaining = self.watchdog.value - ticks
            if remaining <= 0:
                self.watchdog.load(0)
                self.watchdog_expired = True
            else:
                self.watchdog.load(remaining)
