"""System registers: cache control, LEON configuration, power-down.

Registers (relative offsets):

    0x14  cache control  (bit 0: I-cache enable, bit 1: D-cache enable,
                          bit 2: flush I-cache, bit 3: flush D-cache --
                          flush bits read back as zero)
    0x18  power-down     (any write idles the processor until an interrupt)
    0x24  configuration  (read-only encoding of the synthesis configuration,
                          so software can discover cache sizes and FT mode)
    0x28  write-protect unit 0: start address
    0x2C  write-protect unit 0: end address
    0x30  write-protect unit 0: control (0 off, 1 protect-inside,
                                         2 protect-outside)
    0x34/0x38/0x3C  write-protect unit 1 (same layout)
"""

from __future__ import annotations

from typing import Optional

from repro.amba.apb import ApbSlave
from repro.core.config import LeonConfig
from repro.ft.protection import ProtectionScheme
from repro.ft.tmr import FlipFlopBank
from repro.mem.writeprotect import WpMode

_CCR_ICACHE_ENABLE = 1
_CCR_DCACHE_ENABLE = 2
_CCR_FLUSH_ICACHE = 4
_CCR_FLUSH_DCACHE = 8

#: Write-protect control encoding (register value <-> WpMode).
_WP_MODES = {0: WpMode.DISABLED, 1: WpMode.PROTECT_INSIDE,
             2: WpMode.PROTECT_OUTSIDE}
_WP_MODE_CODES = {mode: code for code, mode in _WP_MODES.items()}


def _log2(value: int) -> int:
    return value.bit_length() - 1


class SystemRegisters(ApbSlave):
    """Cache control / configuration / power-down block."""

    def __init__(self, config: LeonConfig, offset: int = 0x00, *,
                 ffbank: Optional[FlipFlopBank] = None) -> None:
        super().__init__("sysregs", offset, 0x40)
        bank = ffbank if ffbank is not None else FlipFlopBank(tmr=False)
        self.config = config
        self._cache_control = bank.register(
            "sysregs.ccr", 2, reset=_CCR_ICACHE_ENABLE | _CCR_DCACHE_ENABLE
        )
        self.power_down_requested = False
        # Wired by the system so flush bits reach the caches.
        self.icache = None
        self.dcache = None
        #: Wired by the system: the memory controller's write protector.
        self.write_protector = None

    def capture(self) -> dict:
        return {"power_down_requested": self.power_down_requested}

    def restore(self, state: dict) -> None:
        self.power_down_requested = bool(state["power_down_requested"])

    @property
    def icache_enabled(self) -> bool:
        return bool(self._cache_control.value & _CCR_ICACHE_ENABLE)

    @property
    def dcache_enabled(self) -> bool:
        return bool(self._cache_control.value & _CCR_DCACHE_ENABLE)

    def apb_read(self, offset: int) -> int:
        if offset == 0x14:
            return self._cache_control.value
        if offset == 0x24:
            return self._config_word()
        if 0x28 <= offset < 0x40 and self.write_protector is not None:
            unit = self.write_protector.units[(offset - 0x28) // 0xC]
            field = (offset - 0x28) % 0xC
            if field == 0x0:
                return unit.start
            if field == 0x4:
                return unit.end
            return _WP_MODE_CODES[unit.mode]
        return 0

    def apb_write(self, offset: int, value: int) -> None:
        if offset == 0x14:
            self._cache_control.load(value & 3)
            if value & _CCR_FLUSH_ICACHE and self.icache is not None:
                self.icache.flush()
            if value & _CCR_FLUSH_DCACHE and self.dcache is not None:
                self.dcache.flush()
            if self.icache is not None:
                self.icache.enabled = self.icache_enabled
            if self.dcache is not None:
                self.dcache.enabled = self.dcache_enabled
        elif offset == 0x18:
            self.power_down_requested = True
        elif 0x28 <= offset < 0x40 and self.write_protector is not None:
            unit = self.write_protector.units[(offset - 0x28) // 0xC]
            field = (offset - 0x28) % 0xC
            if field == 0x0:
                unit.start = value & ~3
            elif field == 0x4:
                unit.end = value & ~3
            else:
                unit.mode = _WP_MODES.get(value & 3, unit.mode)

    def _config_word(self) -> int:
        """Encode the build configuration (LEON configuration register)."""
        config = self.config
        word = _log2(config.icache.size_bytes // 1024) & 0xF
        word |= (_log2(config.dcache.size_bytes // 1024) & 0xF) << 4
        word |= (config.nwindows - 1) << 8
        word |= int(config.has_fpu) << 13
        word |= int(config.has_muldiv) << 14
        word |= int(config.memory.edac) << 15
        word |= int(config.ft.tmr_flipflops) << 16
        schemes = {
            ProtectionScheme.NONE: 0,
            ProtectionScheme.PARITY: 1,
            ProtectionScheme.DUAL_PARITY: 2,
            ProtectionScheme.BCH: 3,
        }
        word |= schemes[config.ft.regfile_protection] << 17
        word |= schemes[config.icache.parity] << 19
        word |= schemes[config.dcache.parity] << 21
        return word
