"""The interrupt controller: 15 prioritized interrupt levels.

Registers (relative offsets):

    0x00  mask      (bit n enables level n; level 15 is non-maskable on the
                     real device but we follow the mask for simplicity of
                     the test programs)
    0x04  pending   (read)
    0x08  force     (write: set pending bits directly, for software tests)
    0x0C  clear     (write: clear pending bits)

Peripheral interrupt lines call :meth:`raise_interrupt`; the integer unit
polls :meth:`pending_level` against the PSR processor-interrupt-level and
calls :meth:`acknowledge` when it takes the trap.
"""

from __future__ import annotations

from typing import Optional

from repro.amba.apb import ApbSlave
from repro.ft.tmr import FlipFlopBank

_LEVEL_MASK = 0xFFFE  # levels 1..15


class InterruptController(ApbSlave):
    """15-level interrupt controller with mask / pending / force / clear."""

    def __init__(self, offset: int = 0x90, *,
                 ffbank: Optional[FlipFlopBank] = None) -> None:
        super().__init__("irqctrl", offset, 0x10)
        bank = ffbank if ffbank is not None else FlipFlopBank(tmr=False)
        self._mask = bank.register("irqctrl.mask", 16)
        self._pending = bank.register("irqctrl.pending", 16)

    # -- APB interface ---------------------------------------------------------

    def apb_read(self, offset: int) -> int:
        if offset == 0x00:
            return self._mask.value
        if offset == 0x04:
            return self._pending.value
        return 0

    def apb_write(self, offset: int, value: int) -> None:
        if offset == 0x00:
            self._mask.load(value & _LEVEL_MASK)
        elif offset == 0x08:
            self._pending.load(self._pending.value | (value & _LEVEL_MASK))
        elif offset == 0x0C:
            self._pending.load(self._pending.value & ~value)

    # -- interrupt lines ----------------------------------------------------------

    def raise_interrupt(self, level: int) -> None:
        """Assert interrupt line ``level`` (1..15)."""
        if 1 <= level <= 15:
            self._pending.load(self._pending.value | (1 << level))

    def pending_level(self, pil: int) -> int:
        """Highest pending, unmasked level strictly above ``pil`` (0 = none)."""
        active = self._pending.value & self._mask.value & _LEVEL_MASK
        if not active:
            return 0
        level = active.bit_length() - 1
        return level if level > pil else 0

    def acknowledge(self, level: int) -> None:
        """The processor took the interrupt trap for ``level``."""
        self._pending.load(self._pending.value & ~(1 << level))
