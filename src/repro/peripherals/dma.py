"""A simple DMA engine: the SOC-reuse story of section 2.

LEON's design goals include modularity ("reuse in system-on-a-chip
designs") and standard interfaces ("to reuse commercial cores").  This
peripheral demonstrates both: an APB-programmed block-copy engine that
masters the AHB bus alongside the processor, competing for memory
bandwidth through the arbiter.

Registers (relative offsets):

    0x00  source address
    0x04  destination address
    0x08  word count (write starts the transfer)
    0x0C  status (bit 0: busy, bit 1: bus error, bit 2: done)

The engine moves up to ``words_per_tick`` words per elapsed processor
cycle batch, so long copies visibly steal AHB cycles from cache refills.
Transfers through EDAC-protected memory scrub single errors as a side
effect -- DMA sweeps double as memory scrubbing, a common FT housekeeping
trick (section 4.8's "periodic refresh" idea applied to main memory).
"""

from __future__ import annotations

from typing import Optional

from repro.amba.ahb import AhbBus, TransferSize
from repro.amba.apb import ApbSlave
from repro.ft.tmr import FlipFlopBank

_STATUS_BUSY = 1
_STATUS_ERROR = 2
_STATUS_DONE = 4


class DmaEngine(ApbSlave):
    """Word-granular memory-to-memory DMA with AHB mastering."""

    def __init__(self, bus: AhbBus, offset: int = 0xD0, *,
                 words_per_tick: float = 0.25,
                 ffbank: Optional[FlipFlopBank] = None) -> None:
        super().__init__("dma", offset, 0x10)
        bank = ffbank if ffbank is not None else FlipFlopBank(tmr=False)
        self.bus = bus
        self.master = bus.add_master("dma", priority=0)
        self.words_per_tick = words_per_tick
        self._source = bank.register("dma.source", 32)
        self._destination = bank.register("dma.destination", 32)
        self._count = bank.register("dma.count", 16)
        self._status = bank.register("dma.status", 3)
        self._progress = 0.0
        self.words_moved = 0
        self.corrected = 0

    # -- APB interface -----------------------------------------------------------

    def apb_read(self, offset: int) -> int:
        if offset == 0x00:
            return self._source.value
        if offset == 0x04:
            return self._destination.value
        if offset == 0x08:
            return self._count.value
        if offset == 0x0C:
            return self._status.value
        return 0

    def apb_write(self, offset: int, value: int) -> None:
        if offset == 0x00:
            self._source.load(value & ~3)
        elif offset == 0x04:
            self._destination.load(value & ~3)
        elif offset == 0x08:
            self._count.load(value)
            self._status.load(_STATUS_BUSY if value else _STATUS_DONE)
            self._progress = 0.0
        elif offset == 0x0C:
            self._status.load(0)  # write clears status

    @property
    def busy(self) -> bool:
        return bool(self._status.value & _STATUS_BUSY)

    @property
    def error(self) -> bool:
        return bool(self._status.value & _STATUS_ERROR)

    @property
    def done(self) -> bool:
        return bool(self._status.value & _STATUS_DONE)

    def capture(self) -> dict:
        """Non-ffbank engine state (registers live in the flip-flop bank)."""
        return {
            "progress": self._progress,
            "diag": {"words_moved": self.words_moved,
                     "corrected": self.corrected},
        }

    def restore(self, state: dict) -> None:
        self._progress = float(state["progress"])
        diag = state.get("diag") or {}
        self.words_moved = int(diag.get("words_moved", 0))
        self.corrected = int(diag.get("corrected", 0))

    # -- the engine ---------------------------------------------------------------

    def tick(self, cycles: int) -> None:
        if not self.busy:
            return
        self._progress += cycles * self.words_per_tick
        while self._progress >= 1.0 and self.busy:
            self._progress -= 1.0
            self._move_one_word()

    def _move_one_word(self) -> None:
        source = self._source.value
        destination = self._destination.value
        read = self.bus.read(source, TransferSize.WORD, self.master)
        if read.error:
            self._status.load(_STATUS_ERROR)
            return
        self.corrected += read.corrected
        write = self.bus.write(destination, read.data, TransferSize.WORD,
                               self.master)
        if write.error:
            self._status.load(_STATUS_ERROR)
            return
        self.words_moved += 1
        self._source.load(source + 4)
        self._destination.load(destination + 4)
        remaining = self._count.value - 1
        self._count.load(remaining)
        if remaining == 0:
            self._status.load(_STATUS_DONE)

    def drain(self, max_words: int = 1 << 20) -> None:
        """Run the transfer to completion (test/bench convenience)."""
        moved = 0
        while self.busy and moved < max_words:
            self._move_one_word()
            moved += 1
