"""The instruction cache."""

from __future__ import annotations

from typing import Optional

from repro.amba.ahb import TransferSize
from repro.cache.base import CacheAccess, CacheBase


class InstructionCache(CacheBase):
    """Direct-mapped instruction cache.

    The integer unit fetches one instruction word per cycle through
    :meth:`fetch`; parity errors in the tag or data RAM force a miss and the
    instruction stream is transparently re-fetched from memory.
    """

    kind = "i"

    def fetch(self, address: int, *, cacheable: bool = True) -> CacheAccess:
        """Fetch the instruction word at ``address``."""
        if not self.enabled or not cacheable:
            return self.uncached_read(address, TransferSize.WORD)
        return self.lookup(address)

    def fetch_word(self, address: int) -> Optional[int]:
        """Zero-extra-cycle hit probe for the hot fetch loop.

        Returns the instruction word on a clean cacheable hit, ``None``
        when the full :meth:`fetch` path must run (miss, parity suspect,
        cache disabled).  The caller is responsible for the cacheability
        check.
        """
        if not self.enabled:
            return None
        return self.lookup_word(address)
