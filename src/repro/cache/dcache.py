"""The data cache: write-through with a write buffer.

Section 4.3: "The data cache uses write-through policy, and a second copy of
the data is thus always available" -- which is what makes forced-miss the
complete correction story for D-cache parity errors.

Section 4.4: with register-file protection enabled, the write buffer delays
the memory store request by one clock so the *second* word of a double-store
has been checked (and possibly corrected) before the bus cycle starts;
double-store instructions therefore cost one extra cycle in the FT
configuration.  That is the paper's only FT performance impact.
"""

from __future__ import annotations

from repro.amba.ahb import TransferSize
from repro.cache.base import CacheAccess, CacheBase
from repro.ft.protection import ErrorKind


class DataCache(CacheBase):
    """Direct-mapped, write-through, no-allocate-on-write data cache."""

    kind = "d"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        #: One extra cycle per double-store, set by the system when the
        #: register file is protected (the write-buffer delay of section 4.4).
        self.double_store_delay = False  # state: config -- set once at system build, constant per run
        #: Write-buffer occupancy statistics.
        self.buffered_stores = 0

    def capture(self) -> dict:
        state = super().capture()
        state["diag"] = {"buffered_stores": self.buffered_stores}
        return state

    def restore(self, state: dict) -> None:
        super().restore(state)
        diag = state.get("diag") or {}
        self.buffered_stores = int(diag.get("buffered_stores", 0))

    def read_fast(self, address: int, size: TransferSize) -> "int | None":
        """Zero-extra-cycle load probe: the sub-word-extracting twin of
        :meth:`CacheBase.lookup_word`.  Returns the loaded value on a clean
        hit, ``None`` when the full :meth:`read` path must run.  The caller
        is responsible for the enabled/cacheable check.
        """
        data = self.lookup_word(address & ~3)
        if data is None or size is TransferSize.WORD:
            return data
        byte_offset = address & 3
        if size is TransferSize.HALFWORD:
            return (data >> ((2 - byte_offset) * 8)) & 0xFFFF
        return (data >> ((3 - byte_offset) * 8)) & 0xFF

    def read(self, address: int, size: TransferSize, *, cacheable: bool = True) -> CacheAccess:
        """Load through the cache (sub-word loads extract from the cached
        word, as the hardware does)."""
        if not self.enabled or not cacheable:
            return self.uncached_read(address, size)
        access = self.lookup(address & ~3)
        if access.mem_error or size is TransferSize.WORD:
            return access
        byte_offset = address & 3
        if size is TransferSize.HALFWORD:
            shift = (2 - byte_offset) * 8
            access.data = (access.data >> shift) & 0xFFFF
        else:
            shift = (3 - byte_offset) * 8
            access.data = (access.data >> shift) & 0xFF
        return access

    def write(self, address: int, value: int, size: TransferSize, *,
              cacheable: bool = True, double: bool = False) -> CacheAccess:
        """Store through the cache.

        Write-through: memory is always written.  The cached copy is updated
        only on a hit (no write-allocate).  ``double`` marks the second word
        of an STD; with FT enabled it costs the write-buffer delay cycle.
        """
        access = CacheAccess(hit=False)
        if self.enabled and cacheable:
            self._update_on_hit(address, value, size, access)
        result = self.bus.write(address, value, size, self.master)
        self.buffered_stores += 1
        # The write buffer hides the memory latency from the pipeline (the
        # base store timing in repro.iu.timing covers the buffer hand-off);
        # only the FT double-store delay adds a visible cycle.
        access.corrected += result.corrected
        if result.error:
            access.mem_error = True
        if double and self.double_store_delay:
            access.cycles += 1
        return access

    def _update_on_hit(self, address: int, value: int, size: TransferSize,
                       access: CacheAccess) -> None:
        index = self._index(address)
        entry, tag_kind = self.tag_ram.read(index)
        if tag_kind is not ErrorKind.NONE:
            # Tag parity error discovered by a store: correct by refetch --
            # here simply by invalidating the line; memory holds the truth.
            self._count_tag_error(index)
            access.tag_parity_error = True
            self.tag_ram.write(index, 0)
            if self.telemetry.enabled:
                self.telemetry.resolve(self._site_tag, index,
                                       action="invalidate",
                                       instr=self.perf.instructions)
            return
        tag, valid = self._split_tag_entry(entry)
        word = self._word(address)
        if tag != self._tag(address) or not (valid >> word) & 1:
            return  # write miss: no allocate
        access.hit = True
        slot = index * self.words_per_line + word
        if size is TransferSize.WORD:
            self.data_ram.write(slot, value)
            return
        current, data_kind = self.data_ram.read(slot)
        if data_kind is not ErrorKind.NONE:
            # Sub-word store must read-modify-write the cached word; if that
            # word has a parity error, invalidate it instead (memory gets
            # the store anyway) and count the corrected error.
            self._count_data_error(slot)
            access.data_parity_error = True
            self.invalidate_word(address)
            if self.telemetry.enabled:
                self.telemetry.resolve(self._site_data, slot,
                                       action="invalidate",
                                       instr=self.perf.instructions)
            return
        byte_offset = address & 3
        if size is TransferSize.HALFWORD:
            shift = (2 - byte_offset) * 8
            mask = 0xFFFF << shift
            merged = (current & ~mask) | ((value & 0xFFFF) << shift)
        else:
            shift = (3 - byte_offset) * 8
            mask = 0xFF << shift
            merged = (current & ~mask) | ((value & 0xFF) << shift)
        self.data_ram.write(slot, merged)
