"""Instruction and data caches with parity protection and sub-blocking.

Paper sections 4.3 (parity, forced miss) and 4.6 (sub-blocking for EDAC
errors).  Both caches are direct-mapped over standard synchronous RAM cells,
protected with one or two parity bits per tag and data word; a parity error
on access simply forces a cache miss, and the uncorrupted data is re-fetched
from external memory (the data cache is write-through, so memory always has
a valid copy).
"""

from repro.cache.ram import CacheRam
from repro.cache.dcache import DataCache
from repro.cache.icache import InstructionCache
from repro.cache.base import CacheAccess, CacheBase

__all__ = ["CacheAccess", "CacheBase", "CacheRam", "DataCache", "InstructionCache"]
