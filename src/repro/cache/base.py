"""Shared direct-mapped cache machinery for the I- and D-caches.

Address layout (direct-mapped):

    | tag | line index | word offset | byte |

The tag RAM stores, per line, one 32-bit word combining the address tag and
the per-word valid bits (sub-blocking, section 4.6); the parity bits of the
tag word therefore cover tag *and* valid bits.  The data RAM stores one
32-bit word per cache word.  On any parity error the access is turned into
a miss and the line is re-fetched from external memory -- parity errors are
*corrected by refetch*, never by the code itself (section 4.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.amba.ahb import AhbBus, AhbMaster, TransferSize
from repro.cache.ram import CacheRam
from repro.core.config import CacheConfig
from repro.core.statistics import ErrorCounters, PerfCounters
from repro.ft.protection import ErrorKind
from repro.telemetry.bus import NULL_TELEMETRY, Telemetry


@dataclass
class CacheAccess:
    """Result of one cache access, as seen by the integer unit.

    ``cycles`` counts *extra* cycles beyond the instruction's base timing:
    zero for a hit, the bus transfer time for a miss or an uncached access.
    ``mem_error`` reports an uncorrectable EDAC error on the requested word,
    which the integer unit converts into a precise access-error trap.
    """

    data: int = 0
    cycles: int = 0
    hit: bool = True
    mem_error: bool = False
    tag_parity_error: bool = False
    data_parity_error: bool = False
    corrected: int = 0


class CacheBase:
    """One direct-mapped cache (instruction or data)."""

    #: 'i' or 'd'; selects which ErrorCounters fields this cache increments.
    kind = "?"

    def __init__(self, config: CacheConfig, bus: AhbBus, master: AhbMaster,
                 errors: ErrorCounters, perf: PerfCounters,
                 telemetry: Optional[Telemetry] = None) -> None:
        self.config = config
        self.bus = bus
        self.master = master
        self.errors = errors
        self.perf = perf
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.enabled = True

        self.lines = config.lines
        self.words_per_line = config.words_per_line
        self._offset_bits = config.line_bytes.bit_length() - 1
        self._index_mask = self.lines - 1
        self._word_mask = self.words_per_line - 1
        self._valid_mask = (1 << self.words_per_line) - 1

        prefix = f"{self.kind}cache"
        self.tag_ram = CacheRam(f"{prefix}-tags", self.lines, config.parity)
        self.data_ram = CacheRam(
            f"{prefix}-data", self.lines * self.words_per_line, config.parity
        )
        self._tag_shift = self._offset_bits + (self.lines.bit_length() - 1)
        #: Telemetry site names (matching the injector's target names) and
        #: the protection mechanism label for detect events.
        self._site_tag = f"{prefix}-tag"
        self._site_data = f"{prefix}-data"
        self._mech = config.parity.value

    # -- address helpers ---------------------------------------------------------

    def _index(self, address: int) -> int:
        return (address >> self._offset_bits) & self._index_mask

    def _word(self, address: int) -> int:
        return (address >> 2) & self._word_mask

    def _tag(self, address: int) -> int:
        return address >> (self._offset_bits + (self.lines.bit_length() - 1))

    def _line_base(self, address: int) -> int:
        return address & ~(self.config.line_bytes - 1)

    def _tag_entry(self, tag: int, valid: int) -> int:
        return ((tag << self.words_per_line) | (valid & self._valid_mask)) & 0xFFFFFFFF

    def _split_tag_entry(self, entry: int):
        return entry >> self.words_per_line, entry & self._valid_mask

    # -- counting ---------------------------------------------------------------

    def _count_tag_error(self, index: int) -> None:
        if self.kind == "i":
            self.errors.ite += 1
            counter = "ITE"
        else:
            self.errors.dte += 1
            counter = "DTE"
        telemetry = self.telemetry
        if telemetry.enabled:
            telemetry.detect(self._site_tag, index, mech=self._mech,
                             kind="detected", counter=counter,
                             instr=self.perf.instructions)

    def _count_data_error(self, word_index: int) -> None:
        if self.kind == "i":
            self.errors.ide += 1
            counter = "IDE"
        else:
            self.errors.dde += 1
            counter = "DDE"
        telemetry = self.telemetry
        if telemetry.enabled:
            telemetry.detect(self._site_data, word_index, mech=self._mech,
                             kind="detected", counter=counter,
                             instr=self.perf.instructions)

    def _count_hit(self) -> None:
        if self.kind == "i":
            self.perf.icache_hits += 1
        else:
            self.perf.dcache_hits += 1

    def _count_miss(self) -> None:
        if self.kind == "i":
            self.perf.icache_misses += 1
        else:
            self.perf.dcache_misses += 1

    # -- state capture -----------------------------------------------------------

    def capture(self) -> dict:
        """Bit-exact cache state: both RAMs plus the enable flag."""
        return {
            "enabled": self.enabled,
            "tags": self.tag_ram.capture(),
            "data": self.data_ram.capture(),
        }

    def restore(self, state: dict) -> None:
        self.enabled = bool(state["enabled"])
        self.tag_ram.restore(state["tags"])
        self.data_ram.restore(state["data"])

    # -- core lookup/refill -------------------------------------------------------

    def flush(self) -> None:
        """Clear all valid bits (the FLUSH instruction / cache control
        register).  Tag words are rewritten so their parity stays valid."""
        for index in range(self.lines):
            self.tag_ram.write(index, 0)

    def invalidate_word(self, address: int) -> None:
        """Clear the valid bit of one word (keeps the rest of the line)."""
        index = self._index(address)
        entry, kind = self.tag_ram.read(index)
        if kind is not ErrorKind.NONE:
            self.tag_ram.write(index, 0)
            return
        tag, valid = self._split_tag_entry(entry)
        valid &= ~(1 << self._word(address))
        self.tag_ram.write(index, self._tag_entry(tag, valid))

    def lookup_word(self, address: int) -> Optional[int]:
        """Zero-cycle hit probe for the hot fetch path.

        Returns the stored data word for a clean hit -- valid word, matching
        tag, no suspect parity in either RAM -- and ``None`` otherwise, in
        which case the caller must take the full :meth:`lookup` path (which
        handles parity errors, misses and refill).  Equivalent to
        :meth:`lookup` on the hit path but performs no allocation and no
        parity re-encode.
        """
        index = (address >> self._offset_bits) & self._index_mask
        tag_ram = self.tag_ram
        if tag_ram._suspect and index in tag_ram._suspect:
            return None
        entry = tag_ram._data[index]
        word = (address >> 2) & self._word_mask
        if (entry >> self.words_per_line) != (address >> self._tag_shift) \
                or not (entry >> word) & 1:
            return None
        data_index = index * self.words_per_line + word
        data_ram = self.data_ram
        if data_ram._suspect and data_index in data_ram._suspect:
            return None
        self._count_hit()
        return data_ram._data[data_index]

    def peek_word(self, address: int) -> Optional[int]:
        """Side-effect-free twin of :meth:`lookup_word`: same clean-hit
        predicate, but counts nothing.  The trace JIT uses it to verify
        block words at burst entry and to probe loads whose hit counting is
        committed separately (only once the covered step is known to
        complete), so a deopt never double-counts a hit.
        """
        index = (address >> self._offset_bits) & self._index_mask
        tag_ram = self.tag_ram
        if tag_ram._suspect and index in tag_ram._suspect:
            return None
        entry = tag_ram._data[index]
        word = (address >> 2) & self._word_mask
        if (entry >> self.words_per_line) != (address >> self._tag_shift) \
                or not (entry >> word) & 1:
            return None
        data_index = index * self.words_per_line + word
        data_ram = self.data_ram
        if data_ram._suspect and data_index in data_ram._suspect:
            return None
        return data_ram._data[data_index]

    def lookup(self, address: int) -> CacheAccess:
        """Read one word through the cache.

        Implements the full section 4.3 policy: tag parity error -> forced
        miss (count tag error); tag mismatch or invalid word -> plain miss;
        data parity error -> forced miss (count data error); otherwise hit.
        """
        access = CacheAccess()
        index = self._index(address)
        entry, tag_kind = self.tag_ram.read(index)
        if tag_kind is not ErrorKind.NONE:
            self._count_tag_error(index)
            access.tag_parity_error = True
            access = self._refill(address, access)
            if self.telemetry.enabled:
                self.telemetry.resolve(self._site_tag, index,
                                       action="refetch",
                                       instr=self.perf.instructions)
            return access
        tag, valid = self._split_tag_entry(entry)
        word = self._word(address)
        if tag != self._tag(address) or not (valid >> word) & 1:
            return self._refill(address, access)
        word_index = index * self.words_per_line + word
        data, data_kind = self.data_ram.read(word_index)
        if data_kind is not ErrorKind.NONE:
            self._count_data_error(word_index)
            access.data_parity_error = True
            access = self._refill(address, access)
            if self.telemetry.enabled:
                self.telemetry.resolve(self._site_data, word_index,
                                       action="refetch",
                                       instr=self.perf.instructions)
            return access
        access.data = data
        self._count_hit()
        return access

    def _refill(self, address: int, access: CacheAccess) -> CacheAccess:
        """Fetch the whole line from memory, applying sub-blocking."""
        access.hit = False
        self._count_miss()
        index = self._index(address)
        base = self._line_base(address)
        results = self.bus.read_burst(base, self.words_per_line, self.master)
        valid = 0
        any_error = False
        edac_corrected = 0
        requested_word = self._word(address)
        for beat, result in enumerate(results):
            access.cycles += result.cycles
            access.corrected += result.corrected
            edac_corrected += result.corrected
            self.errors.edac_corrected += result.corrected
            if result.error:
                any_error = True
                continue
            valid |= 1 << beat
            self.data_ram.write(index * self.words_per_line + beat, result.data)
            if beat == requested_word:
                access.data = result.data
        if edac_corrected and self.telemetry.enabled:
            # EDAC repairs happen in place at the memory; the detect event
            # doubles as the resolution (no open upset bookkeeping -- the
            # beam only strikes the die; ext-mem strikes are manual).
            self.telemetry.detect("ext-mem", None, mech="edac",
                                  kind="correctable", counter="EDAC",
                                  instr=self.perf.instructions,
                                  count=edac_corrected)
        if not self.config.subblocking and any_error:
            # Without sub-blocking the line has a single valid bit: any
            # uncorrectable word poisons the whole line and the error is
            # signalled even if the failed word was only fetched on
            # speculation -- the spurious-trap problem sub-blocking solves.
            self.tag_ram.write(index, self._tag_entry(self._tag(address), 0))
            access.mem_error = True
            return access
        self.tag_ram.write(index, self._tag_entry(self._tag(address), valid))
        if not (valid >> requested_word) & 1:
            # The requested word itself is uncorrectable: its valid bit
            # stays clear and the error propagates to the processor, which
            # takes a precise access-error trap (section 4.6).
            access.mem_error = True
        return access

    def uncached_read(self, address: int, size: TransferSize) -> CacheAccess:
        """Bypass the cache (I/O space, or cache disabled)."""
        result = self.bus.read(address, size, self.master)
        return CacheAccess(
            data=result.data,
            cycles=result.cycles,
            hit=False,
            mem_error=result.error,
            corrected=result.corrected,
        )

    # -- fault-injection surface ----------------------------------------------------

    @property
    def total_bits(self) -> int:
        return self.tag_ram.total_bits + self.data_ram.total_bits

    def inject_flat(self, flat_bit: int) -> str:
        """Flip one stored bit anywhere in this cache's RAMs; tag RAM bits
        come first, then data RAM bits.  Returns 'tag' or 'data'."""
        if flat_bit < self.tag_ram.total_bits:
            self.tag_ram.inject_flat(flat_bit)
            return "tag"
        self.data_ram.inject_flat(flat_bit - self.tag_ram.total_bits)
        return "data"
