"""Cache RAM arrays: bit-level word storage with parity check bits.

These model the technology-specific single-port RAM mega-cells of section
4.3.  Each entry stores the raw data word *and* its parity bits exactly as
written; fault injection flips stored bits and the parity check discovers
them on the next access.  The check is performed in parallel with tag
comparison in hardware, so it costs no cycles in the timing model.
"""

from __future__ import annotations

from typing import List, Set, Tuple

from repro.errors import ConfigurationError, InjectionError, StateError
from repro.ft.protection import Codec, ErrorKind, ProtectionScheme, make_codec


class CacheRam:
    """One RAM block (a tag array or a data array) of 32-bit words."""

    def __init__(self, name: str, words: int,
                 scheme: ProtectionScheme = ProtectionScheme.NONE) -> None:
        if words <= 0:
            raise ConfigurationError(f"cache RAM {name!r} needs at least one word")
        if scheme is ProtectionScheme.BCH:
            raise ConfigurationError("cache RAMs use parity, not BCH")
        self.name = name
        self.words = words
        self.scheme = scheme
        self.codec: Codec = make_codec(scheme)  # state: wiring -- stateless coder, derived from scheme
        self._data: List[int] = [0] * words
        self._check: List[int] = [0] * words
        #: Indices whose stored check bits may disagree with the data.
        #: Writes generate matching parity, so only fault injection can
        #: create a mismatch; reads of non-suspect words skip the
        #: re-encode-and-compare entirely (the hot fetch path).
        self._suspect: Set[int] = set()

    @property
    def bits_per_word(self) -> int:
        return 32 + self.scheme.check_bits

    @property
    def total_bits(self) -> int:
        return self.words * self.bits_per_word

    def write(self, index: int, value: int) -> None:
        """Store a word, generating its parity bits (simultaneously, as in
        hardware -- the parity always matches the written data)."""
        value &= 0xFFFFFFFF
        self._data[index] = value
        self._check[index] = self.codec.encode(value)
        if self._suspect:
            self._suspect.discard(index)

    def read(self, index: int) -> Tuple[int, ErrorKind]:
        """Read a word, checking parity.  Returns the stored data and the
        error classification; parity cannot correct, so callers treat any
        non-NONE kind as 'force a miss'."""
        data = self._data[index]
        if index not in self._suspect:
            return data, ErrorKind.NONE
        # Parity checking is re-encode-and-compare; no allocation needed.
        if self.codec.encode(data) == self._check[index]:
            return data, ErrorKind.NONE
        return data, ErrorKind.DETECTED

    def read_raw(self, index: int) -> Tuple[int, int]:
        return self._data[index], self._check[index]

    # -- state capture ----------------------------------------------------------

    def capture(self) -> dict:
        """Bit-exact stored state (data, check bits, suspect indices)."""
        return {
            "data": tuple(self._data),
            "check": tuple(self._check),
            "suspect": tuple(sorted(self._suspect)),
        }

    def restore(self, state: dict) -> None:
        data, check = state["data"], state["check"]
        if len(data) != self.words or len(check) != self.words:
            raise StateError(
                f"{self.name}: snapshot has {len(data)} words, RAM has {self.words}")
        self._data = list(data)
        self._check = list(check)
        self._suspect = set(state["suspect"])

    # -- fault injection --------------------------------------------------------

    def inject(self, index: int, bit: int) -> None:
        """Flip one stored bit: 0..31 data, 32.. check bits."""
        if not 0 <= index < self.words:
            raise InjectionError(f"index {index} outside {self.name}")
        if 0 <= bit < 32:
            self._data[index] ^= 1 << bit
        elif 32 <= bit < self.bits_per_word:
            self._check[index] ^= 1 << (bit - 32)
        else:
            raise InjectionError(f"bit {bit} out of range for {self.name}")
        self._suspect.add(index)

    def inject_flat(self, flat_bit: int) -> Tuple[int, int]:
        """Flip the ``flat_bit``-th stored bit; returns (index, bit).

        The physical RAM is treated as a matrix with one word per row, so
        consecutive flat bits are *adjacent cells in the same word* -- the
        geometry that makes multiple-bit upsets dangerous (section 4.3).
        """
        if not 0 <= flat_bit < self.total_bits:
            raise InjectionError(f"flat bit {flat_bit} outside {self.name}")
        index, bit = divmod(flat_bit, self.bits_per_word)
        self.inject(index, bit)
        return index, bit
