"""Command-line interface: ``python -m repro <command>``.

Subcommands:

    run          assemble and run a SPARC V8 source file on a LEON system
    campaign     heavy-ion campaign runs (Table 2 style rows)
    sweep        cross-section vs LET sweep (Figure 6/7 style curves);
                 ``--importance`` oversamples statically-live sites with
                 Horvitz-Thompson reweighting and per-point CIs
    analyze      static analysis of a test program: CFG with delay
                 slots, liveness, the ACE map campaigns pre-classify
                 against
    trace        pretty-print a campaign telemetry trace (per-upset
                 lifecycle view)
    stats        fold a telemetry trace into Table-2 counters, per-site
                 detection/correction tallies and latency histograms
    state        save or inspect a device snapshot
    table1       print the synthesis-area comparison (Table 1)
    figure2      print the pipeline diagrams (Figure 2)
    rates        on-orbit SEU rate prediction
    availability scheme availability estimates, optionally from measured
                 recovery downtime
    info         describe the simulated device configuration
    serve        campaign service: job queue, HTTP API and dashboard
    ingest       import JSONL result logs / traces into the campaign
                 database the service answers from

``campaign`` and ``sweep`` accept ``--jobs N`` to fan independent runs
across N worker processes; results are identical to ``--jobs 1``.  With
``--warm-start`` (and a ``--beam-delay`` prefix) the fault-free warm-up is
executed once and every run restores from the shared snapshot -- results
are still bit-for-bit identical.  ``campaign --results FILE`` appends each
completed run to a crash-safe JSONL log; ``campaign --resume FILE`` reloads
it and re-runs only what is missing.

``campaign --recovery <policy>`` arms a system-level recovery ladder
(pipeline restart, cache flush, watchdog-triggered warm reset, cold
reboot) so runs survive error-mode halts; ``availability --measured FILE``
folds the recorded downtime back into the orbital availability estimate.

``campaign --trace FILE`` records every run's SEU lifecycle events
(strike -> detection -> resolution) plus phase timers to a crash-safe
JSONL trace; ``trace FILE`` pretty-prints it and ``stats FILE`` folds it
back into the paper's counter readouts.  Measured results are
byte-identical with tracing on or off.

``serve`` runs the campaign service: POST a campaign spec to
``/api/jobs``, poll the job id, read Table-2 folds / cross-section
curves / availability / diffs back over HTTP -- numbers byte-identical
to the CLI's, because both sit on the same :mod:`repro.store` query
layer.  ``ingest`` imports existing JSONL logs into the service's
database idempotently.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.alternatives.availability import (
    DEFAULT_CLOCK_HZ,
    compare_schemes,
    estimate_with_measured_outage,
    measure_availability,
)
from repro.alternatives.schemes import all_schemes
from repro.errors import ConfigurationError
from repro.area.model import TimingModel, table1
from repro.core.config import LeonConfig
from repro.core.system import LeonSystem
from repro.fault.campaign import (
    Campaign,
    CampaignConfig,
    prepare_warm_start,
    resolve_builder,
)
from repro.fault.crosssection import DEFAULT_LETS, measure_curve, render_curve
from repro.fault.executor import (
    CampaignExecutor,
    expand_runs,
    run_campaign,
    run_campaign_traced,
)
from repro.fault.report import (
    render_recovery_summary,
    render_table,
    render_table2,
)
from repro.fault.models import classify_outcome, model_names, security_fold
from repro.fault.rates import ENVIRONMENTS, RatePredictor
from repro.fault.results import ResultStore, config_key
from repro.iu.pipetrace import PipelineTracer
from repro.recovery import POLICIES
from repro.sparc.asm import assemble
from repro.state.snapshot import Snapshot
from repro.store import load_results, split_pending
from repro.telemetry import (
    JsonlTraceSink,
    fold_stats,
    lifecycles,
    read_trace,
    render_lifecycle,
    render_stats,
)

_CONFIGS = {
    "standard": LeonConfig.standard,
    "ft": LeonConfig.fault_tolerant,
    "express": LeonConfig.leon_express,
}


def _let_list(text: str):
    try:
        return tuple(float(part) for part in text.split(","))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated numbers, got {text!r}")


def _add_config_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--config", choices=sorted(_CONFIGS), default="ft",
                        help="device configuration (default: ft)")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="LEON-FT: fault-tolerant SPARC V8 processor simulator",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run = subparsers.add_parser("run", help="assemble and run a source file")
    run.add_argument("source", help="SPARC V8 assembly file")
    run.add_argument("--base", type=lambda v: int(v, 0), default=0x40000000)
    run.add_argument("--max-instructions", type=int, default=1_000_000)
    run.add_argument("--entry", default=None,
                     help="start label (default: image base)")
    run.add_argument("--stop", default=None, help="stop label")
    _add_config_argument(run)

    campaign = subparsers.add_parser("campaign", help="beam campaign runs")
    campaign.add_argument("--program", default="iutest",
                          help="test program: iutest, paranoia, cncf or "
                               "random:<seed> (default: iutest)")
    campaign.add_argument("--fault-model", choices=model_names(),
                          default="seu",
                          help="fault model injected by the campaign "
                               "(default: seu, the transient bit-flip "
                               "beam)")
    campaign.add_argument("--let", type=float, default=110.0)
    campaign.add_argument("--flux", type=float, default=400.0)
    campaign.add_argument("--fluence", type=float, default=2.0e3)
    campaign.add_argument("--seed", type=int, default=1)
    campaign.add_argument("--ips", type=float, default=50_000.0,
                          help="virtual device instructions per beam second")
    campaign.add_argument("--runs", type=int, default=1,
                          help="independent replicas (derived seeds)")
    campaign.add_argument("--jobs", type=int, default=1,
                          help="worker processes (default: serial)")
    campaign.add_argument("--beam-delay", type=float, default=0.0,
                          help="fault-free warm-up before the beam opens "
                               "(beam seconds)")
    campaign.add_argument("--beam-tail", type=float, default=0.0,
                          help="strike-free stretch after the beam closes "
                               "(beam seconds)")
    campaign.add_argument("--warm-start", action="store_true",
                          help="execute the warm-up once, fork every run "
                               "from the snapshot (results unchanged)")
    campaign.add_argument("--flush-period", type=int, default=0,
                          help="periodic cache flush, in instructions "
                               "(section 4.8; 0 = never)")
    campaign.add_argument("--no-early-exit", action="store_true",
                          help="disable golden-timeline early-exit grading "
                               "and checkpoint-shared strike batches: run "
                               "every campaign to program end (the slow "
                               "oracle path; results are identical)")
    campaign.add_argument("--no-static", action="store_true",
                          help="disable static pre-classification of "
                               "provably-dead transient strikes (the "
                               "executed oracle path; results are "
                               "identical)")
    campaign.add_argument("--results", metavar="FILE", default=None,
                          help="append completed runs to a JSONL result log")
    campaign.add_argument("--resume", metavar="FILE", default=None,
                          help="reload a JSONL result log, run only the "
                               "missing seeds, append them to it")
    campaign.add_argument("--recovery", choices=sorted(POLICIES),
                          default="none",
                          help="system-level recovery policy: keep running "
                               "through error-mode halts and uncorrectable "
                               "traps (default: none)")
    campaign.add_argument("--device", choices=sorted(_CONFIGS),
                          default="express",
                          help="device configuration (default: express; "
                               "--results/--resume require express)")
    campaign.add_argument("--trace", metavar="FILE", default=None,
                          help="record per-upset lifecycle events and "
                               "phase timers to a JSONL telemetry trace "
                               "(results unchanged)")

    attack = subparsers.add_parser(
        "attack", help="targeted fault attack: detected / silent / "
                       "masked security readout")
    attack.add_argument("--program", default="iutest",
                        help="test program: iutest, paranoia, cncf or "
                             "random:<seed> (default: iutest)")
    attack.add_argument("--skip-at", metavar="PC", default=None,
                        help="instruction-skip attack: overwrite the word "
                             "at PC (hex address or program symbol) with "
                             "a NOP")
    attack.add_argument("--opcode-at", metavar="PC", default=None,
                        help="opcode-corruption attack: flip one bit of "
                             "the word at PC (hex address or program "
                             "symbol)")
    attack.add_argument("--window", type=int, default=1,
                        help="attack window in words starting at PC; each "
                             "run's seed picks one word (default: 1)")
    attack.add_argument("--bit", type=int, default=None,
                        help="opcode bit to flip (default: seed-chosen)")
    attack.add_argument("--at", type=float, default=0.5,
                        help="attack time into the beam window, seconds "
                             "(default: 0.5)")
    attack.add_argument("--runs", type=int, default=8,
                        help="independent replicas (derived seeds sweep "
                             "the window; default: 8)")
    attack.add_argument("--seed", type=int, default=1)
    attack.add_argument("--fluence", type=float, default=2.0e3)
    attack.add_argument("--flux", type=float, default=400.0)
    attack.add_argument("--ips", type=float, default=50_000.0,
                        help="virtual device instructions per beam second")
    attack.add_argument("--jobs", type=int, default=1,
                        help="worker processes (default: serial)")
    attack.add_argument("--recovery", choices=sorted(POLICIES),
                        default="none")
    attack.add_argument("--results", metavar="FILE", default=None,
                        help="append completed runs to a JSONL result log")

    trace = subparsers.add_parser(
        "trace", help="pretty-print a campaign telemetry trace")
    trace.add_argument("file", help="JSONL trace written by campaign --trace")
    trace.add_argument("--run", type=int, default=None,
                       help="only this run index")
    trace.add_argument("--target", default=None,
                       help="only upsets striking this target")
    trace.add_argument("--state", default=None,
                       help="only upsets with this terminal state "
                            "(e.g. refetch, pipeline-restart, trap, "
                            "latent, masked)")
    trace.add_argument("--events", action="store_true",
                       help="dump the raw event lines instead of the "
                            "lifecycle view")

    stats = subparsers.add_parser(
        "stats", help="fold a telemetry trace into counter readouts")
    stats.add_argument("file", help="JSONL trace written by campaign --trace")

    sweep = subparsers.add_parser("sweep", help="cross-section vs LET sweep")
    sweep.add_argument("--program", default="iutest",
                       help="test program: iutest, paranoia, cncf or "
                            "random:<seed> (default: iutest)")
    sweep.add_argument("--lets", type=_let_list, default=None,
                       help="comma-separated LET points "
                            "(default: the paper's 6..110 ladder)")
    sweep.add_argument("--flux", type=float, default=400.0)
    sweep.add_argument("--fluence", type=float, default=2.0e3)
    sweep.add_argument("--seed", type=int, default=1)
    sweep.add_argument("--ips", type=float, default=50_000.0,
                       help="virtual device instructions per beam second")
    sweep.add_argument("--jobs", type=int, default=1,
                       help="worker processes (default: serial)")
    sweep.add_argument("--beam-delay", type=float, default=0.0,
                       help="fault-free warm-up before the beam opens "
                            "(beam seconds)")
    sweep.add_argument("--beam-tail", type=float, default=0.0,
                       help="strike-free stretch after the beam closes "
                            "(beam seconds)")
    sweep.add_argument("--warm-start", action="store_true",
                       help="execute the warm-up once, fork every LET point "
                            "from the snapshot (curve unchanged)")
    sweep.add_argument("--no-early-exit", action="store_true",
                       help="disable golden-timeline early-exit grading "
                            "(the slow oracle path; curve unchanged)")
    sweep.add_argument("--importance", action="store_true",
                       help="importance-sample the sweep: strikes land "
                            "only on statically-live sites (the seu-live "
                            "model), counts are Horvitz-Thompson "
                            "reweighted, points carry 95%% CIs")

    analyze = subparsers.add_parser(
        "analyze", help="static analysis of an assembled test program: "
                        "CFG, liveness, ACE map")
    analyze.add_argument("program", nargs="?", default="iutest",
                         help="test program: iutest, paranoia, cncf or "
                              "random:<seed> (default: iutest)")
    analyze.add_argument("--device", choices=sorted(_CONFIGS),
                         default="express",
                         help="device configuration analyzed against "
                              "(default: express, the campaign default)")
    analyze.add_argument("--boot", type=int, default=2000, metavar="N",
                         help="execute N instructions before reading the "
                              "entry state (default: 2000, past the "
                              "trap-table/window setup -- the state a "
                              "warmed campaign analyzes; 0 analyzes the "
                              "load-time entry, which degrades on the "
                              "boot code's wrwim)")
    analyze.add_argument("--json", action="store_true",
                         help="emit the full analysis as JSON instead of "
                              "the text report")
    analyze.add_argument("--report", metavar="FILE", default=None,
                         help="also write the JSON analysis to FILE")

    state = subparsers.add_parser(
        "state", help="save or inspect a device snapshot")
    state.add_argument("action", choices=["save", "info"])
    state.add_argument("file", help="snapshot file path")
    state.add_argument("--program", default="iutest",
                       choices=["iutest", "paranoia", "cncf"],
                       help="test program to run before saving")
    state.add_argument("--instructions", type=int, default=10_000,
                       help="instructions to execute before saving")
    _add_config_argument(state)

    subparsers.add_parser("table1", help="print the Table 1 area comparison")
    subparsers.add_parser("figure2", help="print the Figure 2 diagrams")

    rates = subparsers.add_parser("rates", help="on-orbit SEU rate prediction")
    rates.add_argument("--environment", choices=sorted(ENVIRONMENTS),
                       default=None, help="default: all environments")

    avail = subparsers.add_parser(
        "availability", help="scheme availability estimates")
    avail.add_argument("--environment", choices=sorted(ENVIRONMENTS),
                       default="GEO", help="orbital environment "
                                           "(default: GEO)")
    avail.add_argument("--measured", metavar="FILE", default=None,
                       help="JSONL result log of a campaign run with "
                            "--recovery; replaces the analytic outage "
                            "constant with the measured mean outage")
    avail.add_argument("--clock-hz", type=float, default=DEFAULT_CLOCK_HZ,
                       help="device clock for cycle-to-seconds conversion "
                            f"(default: {DEFAULT_CLOCK_HZ:.0f})")

    info = subparsers.add_parser("info", help="describe the device")
    _add_config_argument(info)

    serve = subparsers.add_parser(
        "serve", help="campaign service: job queue, HTTP API + dashboard")
    serve.add_argument("--db", default="campaigns.db", metavar="FILE",
                       help="campaign database (default: campaigns.db)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8321,
                       help="bind port (default: 8321)")
    serve.add_argument("--jobs", type=int, default=1,
                       help="worker processes per campaign job "
                            "(default: serial)")

    ingest = subparsers.add_parser(
        "ingest", help="import JSONL result logs / telemetry traces "
                       "into the campaign database")
    ingest.add_argument("files", nargs="+",
                        help="JSONL files written by campaign "
                             "--results / --trace")
    ingest.add_argument("--db", default="campaigns.db", metavar="FILE",
                        help="campaign database (default: campaigns.db)")
    ingest.add_argument("--name", default=None,
                        help="campaign name (default: each file's stem); "
                             "with several files, merges them into one "
                             "campaign")
    ingest.add_argument("--trace", action="store_true",
                        help="the files are telemetry traces, not result "
                             "logs")

    lint = subparsers.add_parser(
        "lint", help="FT-invariant static analysis (and runtime audit)")
    lint.add_argument("paths", nargs="*", default=None,
                      help="files or directories to lint "
                           "(default: the installed repro package)")
    lint.add_argument("--audit", action="store_true",
                      help="also instantiate a live system and cross-check "
                           "snapshot round-trips, fault-space coverage and "
                           "the RESET_SKIP contract")
    lint.add_argument("--report", metavar="FILE", default=None,
                      help="write the findings as a JSON report")
    lint.add_argument("--format", choices=["text", "json"], default="text",
                      help="stdout format (default: text)")
    lint.add_argument("--show-suppressed", action="store_true",
                      help="include suppressed findings in the text output")
    lint.add_argument("--list-rules", action="store_true",
                      help="describe every rule and exit")

    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    with open(args.source) as handle:
        source = handle.read()
    program = assemble(source, base=args.base)
    system = LeonSystem(_CONFIGS[args.config]())
    system.load_program(program)
    if args.entry:
        entry = program.address_of(args.entry)
        system.special.pc, system.special.npc = entry, entry + 4
    stop_pc = program.address_of(args.stop) if args.stop else None
    result = system.run(args.max_instructions, stop_pc=stop_pc)
    print(f"stopped: {result.stop_reason} at pc={result.pc:#010x} "
          f"({result.instructions} instructions, {result.cycles} cycles, "
          f"IPC {system.perf.ipc:.2f})")
    if system.errors.total:
        print(f"corrected SEU errors: {system.errors.as_dict()}")
    output = system.uart_output()
    if output:
        print(f"uart: {output!r}")
    return 0 if result.stop_reason != "halted" else 1


def _cmd_campaign(args: argparse.Namespace) -> int:
    store_path = args.resume or args.results
    if args.device != "express" and store_path:
        print("error: --results/--resume store only the default (express) "
              "device; drop --device or the store option", file=sys.stderr)
        return 2
    # "express" maps to leon=None (the campaign default) so result-store
    # keys stay identical to pre---device logs.
    leon = None if args.device == "express" else _CONFIGS[args.device]()
    config = CampaignConfig(
        program=args.program, let=args.let, flux=args.flux,
        fluence=args.fluence, seed=args.seed,
        instructions_per_second=args.ips,
        flush_period_instructions=args.flush_period,
        beam_delay_s=args.beam_delay, beam_tail_s=args.beam_tail,
        recovery=args.recovery, leon=leon,
        early_exit=not args.no_early_exit,
        static_grading=not args.no_static,
        fault_model=args.fault_model,
    )
    configs = expand_runs(config, args.runs)

    store = done = None
    pending = configs
    if store_path:
        store = ResultStore(store_path)
    if args.resume:
        done, pending = split_pending(args.resume, configs)
        if done:
            print(f"resume: {len(done)} of {len(configs)} run(s) already "
                  f"in {args.resume}")

    trace_sink = JsonlTraceSink(args.trace) if args.trace else None
    runner = run_campaign_traced if trace_sink is not None else run_campaign
    next_run_index = 0

    def on_results(batch):
        # The executor delivers batches in config order (both paths), so
        # run indices -- and the trace file -- are jobs-invariant.
        nonlocal next_run_index
        if store is not None:
            store.append(batch)
        if trace_sink is not None:
            for result in batch:
                trace_sink.write_run(result.trace or [], run=next_run_index)
                next_run_index += 1

    started = time.perf_counter()
    warm = None
    if args.warm_start and pending:
        warm = prepare_warm_start(config)
    try:
        fresh = (CampaignExecutor(args.jobs, runner=runner).run_many(
            pending, warm=warm, batch=not args.no_early_exit,
            on_results=on_results) if pending else [])
    finally:
        if store is not None:
            store.close()
        if trace_sink is not None:
            trace_sink.close()
    elapsed = time.perf_counter() - started

    if done:
        # Explicit None check: a stored result is a hit even if falsy.
        fresh_iter = iter(fresh)
        results = []
        for cfg in configs:
            stored = done.get(config_key(cfg))
            results.append(stored if stored is not None
                           else next(fresh_iter))
    else:
        results = fresh
    print(render_table2(results))
    if args.recovery != "none":
        print()
        print(render_recovery_summary(results))
    if args.fault_model != "seu":
        print()
        print(_render_security(results))
    upsets = sum(result.upsets for result in results)
    failures = sum(result.failures for result in results)
    iterations = sum(result.iterations for result in results)
    # True aggregate throughput: fresh instructions over the elapsed wall
    # of the whole batch (parallel runs overlap, so summing per-run wall
    # times would understate it by ~--jobs x).  The per-run times are
    # still reported, as the aggregate CPU figure.
    instructions = sum(result.instructions for result in fresh)
    run_cpu = sum(result.wall_seconds for result in fresh)
    ips = instructions / elapsed if elapsed > 0 and fresh else 0.0
    print(f"\nupsets: {upsets}  failures: {failures}  "
          f"iterations: {iterations}  host-throughput: {ips:,.0f} instr/s "
          f"({elapsed:.2f}s wall, {run_cpu:.2f}s run CPU, "
          f"--jobs {args.jobs})")
    if warm is not None:
        reconverged = sum(1 for result in fresh
                          if result.exit_reason == "reconverged")
        skipped = sum(result.instructions - result.graded_at_instruction
                      for result in fresh
                      if result.graded_at_instruction is not None)
        print(f"early-exit: {reconverged}/{len(fresh)} run(s) reconverged "
              f"to the golden timeline, {skipped:,} instruction(s) skipped")
        static = sum(1 for result in fresh
                     if result.exit_reason == "static_masked")
        if warm.ace is not None:
            print(f"static: ACE fraction "
                  f"{warm.ace.ace_fraction():.3f} "
                  f"({warm.ace.claimable_words}/{warm.ace.regfile_words} "
                  f"words claimed dead); {static}/{len(fresh)} run(s) "
                  f"graded without execution")
    return 0 if failures == 0 else 1


def _render_security(results) -> str:
    """The detected / silent / masked fold, one line per fault model."""
    lines = ["security readout (detected / silent / masked):"]
    for model, fold in sorted(security_fold(results).items()):
        lines.append(f"  {model:<17} detected {fold['detected']:<4} "
                     f"silent {fold['silent']:<4} masked {fold['masked']}")
    return "\n".join(lines)


def _resolve_pc(spec: str, program: str) -> int:
    """An attack PC: a numeric address or a symbol of the test program."""
    try:
        return int(spec, 0)
    except ValueError:
        pass
    built, _expected = resolve_builder(program)(None)
    if spec not in built.symbols:
        raise ConfigurationError(
            f"{spec!r} is neither an address nor a symbol of {program} "
            f"(known: {', '.join(sorted(built.symbols))})")
    return built.symbols[spec]


def _cmd_attack(args: argparse.Namespace) -> int:
    if bool(args.skip_at) == bool(args.opcode_at):
        print("error: choose exactly one of --skip-at / --opcode-at",
              file=sys.stderr)
        return 2
    spec = args.skip_at or args.opcode_at
    model = "instruction-skip" if args.skip_at else "opcode"
    pc = _resolve_pc(spec, args.program)
    fault_params = {"pc": pc, "window": args.window, "time_s": args.at}
    if args.bit is not None:
        fault_params["bit"] = args.bit
    config = CampaignConfig(
        program=args.program, flux=args.flux, fluence=args.fluence,
        seed=args.seed, instructions_per_second=args.ips,
        recovery=args.recovery, fault_model=model,
        fault_params=fault_params,
    )
    configs = expand_runs(config, args.runs)
    store = ResultStore(args.results) if args.results else None
    try:
        results = CampaignExecutor(args.jobs).run_many(
            configs, on_results=(store.append if store else None))
    finally:
        if store is not None:
            store.close()
    print(f"{model} attack on {args.program} at {pc:#010x}"
          + (f" (window {args.window} words)" if args.window > 1 else ""))
    print()
    rows = []
    for index, result in enumerate(results):
        rows.append({
            "run": index,
            "outcome": classify_outcome(result),
            "errors": result.counts.get("Total", 0),
            "traps": result.error_traps,
            "sw_errors": result.sw_errors,
            "iterations": result.iterations,
            "exit": result.exit_reason or "full",
        })
    print(render_table(rows, ["run", "outcome", "errors", "traps",
                              "sw_errors", "iterations", "exit"]))
    print()
    print(_render_security(results))
    fold = security_fold(results).get(model, {})
    # Silent architectural corruption is the security failure mode.
    return 1 if fold.get("silent") else 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    lets = args.lets or DEFAULT_LETS
    started = time.perf_counter()
    curve = measure_curve(
        args.program, lets=lets, flux=args.flux, fluence=args.fluence,
        seed=args.seed, instructions_per_second=args.ips, jobs=args.jobs,
        warm_start=args.warm_start, beam_delay_s=args.beam_delay,
        beam_tail_s=args.beam_tail, early_exit=not args.no_early_exit,
        importance=args.importance,
    )
    wall = time.perf_counter() - started
    print(render_curve(curve))
    if args.importance:
        print("\nimportance sampling (seu-live; device totals, per bit):")
        for point in curve.points["Total"]:
            print(f"  LET {point.let:6.1f}  rho {point.weight:.3f}  "
                  f"sigma {point.sigma_per_bit:.2e}  95% CI "
                  f"[{point.ci_low:.2e}, {point.ci_high:.2e}]  "
                  f"({point.count} event(s))")
    print(f"\n{len(lets)} LET points in {wall:.1f}s wall "
          f"(--jobs {args.jobs})")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    import json

    from repro.analysis.program import analyze_system, render_report

    leon = None if args.device == "express" else _CONFIGS[args.device]()
    campaign = Campaign(CampaignConfig(program=args.program, leon=leon))
    system, spin, _base, program = campaign._build_program()
    if args.boot:
        system.run(args.boot, stop_pc=spin)
    analysis = analyze_system(system, program, name=args.program)
    report = json.dumps(analysis.as_dict(), indent=2, sort_keys=True)
    if args.report:
        with open(args.report, "w") as handle:
            handle.write(report + "\n")
    if args.json:
        print(report)
    else:
        print(render_report(analysis))
    return 0


def _cmd_state(args: argparse.Namespace) -> int:
    if args.action == "info":
        with open(args.file, "rb") as handle:
            snap = Snapshot.from_bytes(handle.read())
        print(f"format version: {snap.version}")
        print(f"components: {', '.join(snap.components)}")
        print(f"architectural digest: {snap.digest()}")
        print(f"full digest:          {snap.digest(architectural=False)}")  # lint: ok=det-digest-diag -- display-only, never compared
        return 0
    campaign = Campaign(CampaignConfig(program=args.program,
                                       leon=_CONFIGS[args.config]()))
    system, spin, _base, _program = campaign._build_program()
    run = system.run(args.instructions, stop_pc=spin)
    data = system.snapshot().to_bytes()
    with open(args.file, "wb") as handle:
        handle.write(data)
    print(f"wrote {len(data)} bytes: {args.program} after "
          f"{run.instructions} instructions, "
          f"digest {system.state_digest()[:16]}...")
    return 0


def _cmd_table1(_args: argparse.Namespace) -> int:
    breakdown = table1()
    rows = breakdown.as_rows()
    print(render_table(rows, ["Module", "Area (mm2)", "Area incl. FT",
                              "Increase"]))
    timing = TimingModel()
    print(f"\nlogic-only: +{breakdown.logic_only().increase_percent:.0f}%  "
          f"voter penalty: {timing.penalty_fraction * 100:.0f}%")
    return 0


def _cmd_figure2(_args: argparse.Namespace) -> int:
    print(PipelineTracer().render_all())
    return 0


def _cmd_rates(args: argparse.Namespace) -> int:
    predictor = RatePredictor()
    names = [args.environment] if args.environment else sorted(ENVIRONMENTS)
    rows = []
    for name in names:
        rates = predictor.predict(name)
        rows.append({
            "environment": name,
            "upsets/day": f"{rates.upsets_per_day:.3f}",
            "interval (h)": f"{rates.seconds_between_upsets / 3600:.1f}",
            "unprotected MTTF (d)":
                f"{predictor.unprotected_failure_interval_days(name):.1f}",
        })
    print(render_table(rows, ["environment", "upsets/day", "interval (h)",
                              "unprotected MTTF (d)"]))
    return 0


def _cmd_availability(args: argparse.Namespace) -> int:
    estimates = compare_schemes(args.environment)
    rows = []
    for name in sorted(estimates):
        est = estimates[name]
        rows.append({
            "scheme": name,
            "coverage": f"{est.covered_fraction * 100:.1f}%",
            "failures/day": f"{est.failures_per_day:.4f}",
            "outage s/day": f"{est.outage_seconds_per_day:.3f}",
            "availability": f"{est.availability:.6f}",
        })
    print(f"environment: {args.environment}  (analytic outage model)")
    print(render_table(rows, ["scheme", "coverage", "failures/day",
                              "outage s/day", "availability"]))

    if not args.measured:
        return 0

    results = load_results(args.measured)
    if not results:
        print(f"\nno results in {args.measured}", file=sys.stderr)
        return 1
    measured = measure_availability(results, clock_hz=args.clock_hz)
    print(f"\nmeasured from {args.measured} "
          f"({measured.runs} run(s) at {args.clock_hz:.0f} Hz)")
    for level in ("pipeline-restart", "cache-flush", "warm-reset",
                  "cold-reboot"):
        if level not in measured.recoveries:
            continue
        print(f"  {level:<17} x{measured.recoveries[level]:<5} "
              f"{measured.downtime_by_level.get(level, 0.0):.6f} s")
    print(f"  in-beam availability  {measured.availability:.6f}")
    print(f"  MTTR                  {measured.mttr_seconds:.6f} s")
    print(f"  mean outage           {measured.mean_outage_seconds:.6f} s")
    leon_ft = next(s for s in all_schemes() if s.name == "LEON-FT")
    remeasured = estimate_with_measured_outage(
        leon_ft, measured, args.environment)
    print(f"\nLEON-FT with the measured outage replacing the analytic "
          f"constant:")
    print(f"  outage s/day          {remeasured.outage_seconds_per_day:.6f}")
    print(f"  availability          {remeasured.availability:.6f}")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    config = _CONFIGS[args.config]()
    system = LeonSystem(config)
    print(f"configuration: {config.name}")
    print(f"  register windows: {config.nwindows} "
          f"({config.regfile_words} x 32 registers)")
    print(f"  icache: {config.icache.size_bytes // 1024} KiB, "
          f"{config.icache.line_bytes}-byte lines, "
          f"parity: {config.icache.parity.value}")
    print(f"  dcache: {config.dcache.size_bytes // 1024} KiB, "
          f"{config.dcache.line_bytes}-byte lines, "
          f"parity: {config.dcache.parity.value}")
    print(f"  regfile protection: {config.ft.regfile_protection.value}"
          f"{' (duplicated 2-port RAMs)' if config.ft.regfile_duplicated else ''}")
    print(f"  TMR flip-flops: {config.ft.tmr_flipflops} "
          f"({system.ffbank.total_bits} architectural bits)")
    print(f"  EDAC external memory: {config.memory.edac}")
    print(f"  FPU: {config.has_fpu}")
    print("  AHB slaves: " + ", ".join(
        f"{slave.name}@{slave.base:#010x}" for slave in system.bus.slaves()))
    print("  APB peripherals: " + ", ".join(
        slave.name for slave in system.apb.slaves()))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    events = read_trace(args.file)
    if args.events:
        import json

        for event in events:
            print(json.dumps(event, sort_keys=True))
        return 0
    lives = lifecycles(events)
    if args.run is not None:
        lives = [life for life in lives if life.run == args.run]
    if args.target:
        lives = [life for life in lives if life.target == args.target]
    if args.state:
        lives = [life for life in lives if life.state == args.state]
    for life in lives:
        print(render_lifecycle(life))
        print()
    open_lives = [life for life in lives if not life.terminal]
    print(f"{len(lives)} upset(s)" +
          (f", {len(open_lives)} without a terminal event"
           if open_lives else ""))
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    stats = fold_stats(read_trace(args.file))
    print(render_stats(stats))
    return 0 if stats.consistent else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import serve

    serve(args.db, host=args.host, port=args.port, jobs=args.jobs)
    return 0


def _cmd_ingest(args: argparse.Namespace) -> int:
    from repro.store import CampaignDatabase

    import os

    status = 0
    with CampaignDatabase(args.db) as db:
        for path in args.files:
            try:
                # The JSONL readers tolerate a missing file (a resume
                # convenience); an ingest of one is a typo, not a
                # campaign.
                if not os.path.isfile(path):
                    raise OSError("no such file")
                if args.trace:
                    campaign, count = db.ingest_trace(path, name=args.name)
                    unit = "event(s)"
                else:
                    campaign, count = db.ingest_results(path, name=args.name)
                    unit = "run(s)"
            except (OSError, ConfigurationError) as exc:
                print(f"error: {path}: {exc}", file=sys.stderr)
                status = 1
                continue
            name = next(row["name"] for row in db.campaigns()
                        if row["id"] == campaign)
            print(f"{path}: {count} {unit} -> campaign "
                  f"'{name}' (#{campaign}) in {args.db}")
    return status


def _cmd_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    import repro
    from repro.analysis import all_rules, analyze_paths, render_json, \
        render_text
    from repro.analysis.audit import render_audit_text, run_audit
    from repro.analysis.core import iter_python_files

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.code} {rule.name}: {rule.protects}")
        return 0

    paths = ([Path(path) for path in args.paths] if args.paths
             else [Path(repro.__file__).parent])
    findings = analyze_paths(paths)
    files = sum(1 for _ in iter_python_files(paths))

    audit_result = None
    if args.audit:
        audit_result = run_audit()

    report = render_json(findings, files=files, audit=audit_result)
    if args.report:
        with open(args.report, "w") as handle:
            handle.write(report + "\n")

    if args.format == "json":
        print(report)
    else:
        print(render_text(findings, show_suppressed=args.show_suppressed))
        if audit_result is not None:
            print(render_audit_text(audit_result))

    active = sum(1 for finding in findings if not finding.suppressed)
    audit_ok = audit_result is None or audit_result["ok"]
    return 0 if active == 0 and audit_ok else 1


_COMMANDS = {
    "run": _cmd_run,
    "campaign": _cmd_campaign,
    "attack": _cmd_attack,
    "trace": _cmd_trace,
    "stats": _cmd_stats,
    "sweep": _cmd_sweep,
    "analyze": _cmd_analyze,
    "state": _cmd_state,
    "table1": _cmd_table1,
    "figure2": _cmd_figure2,
    "rates": _cmd_rates,
    "availability": _cmd_availability,
    "info": _cmd_info,
    "serve": _cmd_serve,
    "ingest": _cmd_ingest,
    "lint": _cmd_lint,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
