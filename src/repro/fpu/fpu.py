"""The floating-point unit: 32 f-registers and the SPARC V8 FP operations.

Arithmetic is delegated to the host's IEEE-754 hardware through ``struct``
packing, with explicit rounding of single-precision results through a
float32 round-trip.  Exception *flags* (divide-by-zero, invalid, overflow)
are detected and accrued in the FSR; traps stay disabled (TEM = 0) unless a
test enables them.

The f-register file is physically part of the processor register file RAM
(Table 1 counts "136x32" for the FPU-less device; with an FPU the same
protection scheme extends over the f-registers), so the f-registers here
carry the same check-bit machinery via the integer register file's codec
when fault injection targets them.
"""

from __future__ import annotations

import math
import struct
from typing import List, Tuple

from repro.errors import InjectionError, StateError, UncorrectableError
from repro.fpu.fsr import (
    EXC_DIVZERO,
    EXC_INVALID,
    EXC_OVERFLOW,
    EXC_UNDERFLOW,
    Fcc,
    Fsr,
)
from repro.ft.protection import Codec, ErrorKind, ProtectionScheme, make_codec
from repro.ft.tmr import FlipFlopBank
from repro.sparc.isa import Opf

#: Cycles charged when an f-register operand is corrected (the same
#: pipeline-restart mechanism as integer operands, section 4.4).
FP_RESTART_CYCLES = 4

#: Execution cycles per operation (model parameters; LEON's Meiko-style FPU).
FPU_TIMING = {
    Opf.FMOVS: 1, Opf.FNEGS: 1, Opf.FABSS: 1,
    Opf.FADDS: 4, Opf.FADDD: 4, Opf.FSUBS: 4, Opf.FSUBD: 4,
    Opf.FMULS: 5, Opf.FMULD: 7, Opf.FDIVS: 20, Opf.FDIVD: 35,
    Opf.FSQRTS: 25, Opf.FSQRTD: 45,
    Opf.FITOS: 4, Opf.FITOD: 4, Opf.FSTOI: 4, Opf.FDTOI: 4,
    Opf.FSTOD: 2, Opf.FDTOS: 4,
    Opf.FCMPS: 2, Opf.FCMPD: 2, Opf.FCMPES: 2, Opf.FCMPED: 2,
}

def _bits_to_f32(bits: int) -> float:
    return struct.unpack(">f", struct.pack(">I", bits & 0xFFFFFFFF))[0]


def _f32_to_bits(value: float) -> Tuple[int, int]:
    """Round to single precision; returns (bits, exception flags)."""
    flags = 0
    try:
        packed = struct.pack(">f", value)
    except (OverflowError, ValueError):
        packed = struct.pack(">f", math.copysign(math.inf, value))
        flags |= EXC_OVERFLOW
    result = struct.unpack(">I", packed)[0]
    unpacked = struct.unpack(">f", packed)[0]
    if math.isinf(unpacked) and math.isfinite(value):
        flags |= EXC_OVERFLOW
    if unpacked == 0.0 and value != 0.0 and math.isfinite(value):
        flags |= EXC_UNDERFLOW
    return result, flags


def _bits_to_f64(high: int, low: int) -> float:
    raw = ((high & 0xFFFFFFFF) << 32) | (low & 0xFFFFFFFF)
    return struct.unpack(">d", raw.to_bytes(8, "big"))[0]


def _f64_to_bits(value: float) -> Tuple[int, int, int]:
    raw = struct.unpack(">Q", struct.pack(">d", value))[0]
    return (raw >> 32) & 0xFFFFFFFF, raw & 0xFFFFFFFF, 0


class Fpu:
    """The FPU: f-registers, FSR, and the FPop executor.

    The 32 f-registers are physically part of the processor register file
    RAM ("136 32-bit integer registers and 32 32-bit floating-point
    registers", section 4.4), so they carry the same protection scheme:
    check bits are generated on write and verified on every read.  A
    correctable error is repaired in place (counted through
    ``on_corrected``, the RFE counter) and charged the 4-cycle restart; an
    uncorrectable error raises :class:`UncorrectableError`, which the
    integer unit converts into the register-error trap.
    """

    def __init__(self, ffbank: FlipFlopBank,
                 protection: ProtectionScheme = ProtectionScheme.NONE,
                 on_corrected=None) -> None:
        self.fsr = Fsr(ffbank)  # state: wiring -- FSR bits live in the ffbank
        self.protection = protection
        self.codec: Codec = make_codec(protection)  # state: wiring -- stateless coder, derived from protection
        self.on_corrected = on_corrected or (lambda: None)
        self._regs: List[int] = [0] * 32
        self._checks: List[int] = [0] * 32
        #: Restart cycles accrued by corrections during the current op.
        self._restart_cycles = 0
        self._protected = protection is not ProtectionScheme.NONE

    # -- register access (word granularity, used by LDF/STF and injection) --------

    def read_reg(self, index: int) -> int:
        """Checked read: corrects single errors, raises on double errors."""
        index &= 0x1F
        data = self._regs[index]
        if not self._protected:
            return data
        if self.codec.encode(data) == self._checks[index]:
            return data
        result = self.codec.check(data, self._checks[index])
        if result.kind is ErrorKind.CORRECTABLE:
            self._regs[index] = result.data
            self._checks[index] = self.codec.encode(result.data)
            self._restart_cycles += FP_RESTART_CYCLES
            self.on_corrected()
            return result.data
        raise UncorrectableError(f"uncorrectable error in %f{index}")

    def write_reg(self, index: int, value: int) -> None:
        index &= 0x1F
        value &= 0xFFFFFFFF
        self._regs[index] = value
        self._checks[index] = self.codec.encode(value)

    def take_restart_cycles(self) -> int:
        """Restart cycles accrued since the last call (read by the IU)."""
        cycles, self._restart_cycles = self._restart_cycles, 0
        return cycles

    # -- state capture ----------------------------------------------------------

    def capture(self) -> dict:
        """Bit-exact f-register state (the FSR lives in the flip-flop bank)."""
        return {
            "regs": tuple(self._regs),
            "checks": tuple(self._checks),
            "restart_cycles": self._restart_cycles,
        }

    def restore(self, state: dict) -> None:
        regs, checks = state["regs"], state["checks"]
        if len(regs) != 32 or len(checks) != 32:
            raise StateError("FPU snapshot must hold 32 f-registers")
        self._regs = list(regs)
        self._checks = list(checks)
        self._restart_cycles = int(state["restart_cycles"])

    @property
    def bits_per_word(self) -> int:
        return 32 + self.protection.check_bits

    def inject(self, index: int, bit: int) -> None:
        """Flip one stored bit of an f-register (0..31 data, then check)."""
        if 0 <= bit < 32:
            self._regs[index & 0x1F] ^= 1 << bit
        elif 32 <= bit < self.bits_per_word:
            self._checks[index & 0x1F] ^= 1 << (bit - 32)
        else:
            raise InjectionError(f"bit {bit} out of range for f-register")

    # -- typed views ------------------------------------------------------------------

    def _read_single(self, index: int) -> float:
        return _bits_to_f32(self.read_reg(index))

    def _write_single(self, index: int, value: float) -> int:
        bits, flags = _f32_to_bits(value)
        self.write_reg(index, bits)
        return flags

    def _read_double(self, index: int) -> float:
        index &= 0x1E  # doubles live in even/odd pairs
        return _bits_to_f64(self.read_reg(index), self.read_reg(index + 1))

    def _write_double(self, index: int, value: float) -> int:
        index &= 0x1E
        high, low, flags = _f64_to_bits(value)
        self.write_reg(index, high)
        self.write_reg(index + 1, low)
        return flags

    # -- the FPop executor --------------------------------------------------------------

    def execute(self, opf: int, rs1: int, rs2: int, rd: int) -> int:
        """Execute one FPop; returns the cycle count (including any
        restart cycles spent correcting f-register operands).

        Exception flags are accrued in the FSR (TEM = 0 model: no traps).
        Raises :class:`UncorrectableError` on a double-bit operand error.
        """
        opf = Opf(opf)
        handler = _HANDLERS[opf]
        flags = handler(self, rs1, rs2, rd)
        if flags:
            self.fsr.accrue(flags)
        return FPU_TIMING[opf] + self.take_restart_cycles()


def _binary_single(op):
    def handler(fpu: Fpu, rs1: int, rs2: int, rd: int) -> int:
        a, b = fpu._read_single(rs1), fpu._read_single(rs2)
        value, flags = _apply(op, a, b)
        return flags | fpu._write_single(rd, value)

    return handler


def _binary_double(op):
    def handler(fpu: Fpu, rs1: int, rs2: int, rd: int) -> int:
        a, b = fpu._read_double(rs1), fpu._read_double(rs2)
        value, flags = _apply(op, a, b)
        return flags | fpu._write_double(rd, value)

    return handler


def _apply(op, a: float, b: float) -> Tuple[float, int]:
    flags = 0
    try:
        value = op(a, b)
    except ZeroDivisionError:
        if a == 0.0 or math.isnan(a):
            return math.nan, EXC_INVALID
        return math.copysign(math.inf, a) * math.copysign(1.0, b), EXC_DIVZERO
    except (OverflowError, ValueError):
        return math.inf, EXC_OVERFLOW
    if math.isnan(value) and not (math.isnan(a) or math.isnan(b)):
        flags |= EXC_INVALID
    return value, flags


def _mov(fpu: Fpu, rs1: int, rs2: int, rd: int) -> int:
    fpu.write_reg(rd, fpu.read_reg(rs2))
    return 0


def _neg(fpu: Fpu, rs1: int, rs2: int, rd: int) -> int:
    fpu.write_reg(rd, fpu.read_reg(rs2) ^ 0x80000000)
    return 0


def _abs(fpu: Fpu, rs1: int, rs2: int, rd: int) -> int:
    fpu.write_reg(rd, fpu.read_reg(rs2) & 0x7FFFFFFF)
    return 0


def _sqrt_single(fpu: Fpu, rs1: int, rs2: int, rd: int) -> int:
    a = fpu._read_single(rs2)
    if a < 0:
        return EXC_INVALID | fpu._write_single(rd, math.nan)
    return fpu._write_single(rd, math.sqrt(a))


def _sqrt_double(fpu: Fpu, rs1: int, rs2: int, rd: int) -> int:
    a = fpu._read_double(rs2)
    if a < 0:
        return EXC_INVALID | fpu._write_double(rd, math.nan)
    return fpu._write_double(rd, math.sqrt(a))


def _itos(fpu: Fpu, rs1: int, rs2: int, rd: int) -> int:
    raw = fpu.read_reg(rs2)
    if raw & 0x80000000:
        raw -= 1 << 32
    return fpu._write_single(rd, float(raw))


def _itod(fpu: Fpu, rs1: int, rs2: int, rd: int) -> int:
    raw = fpu.read_reg(rs2)
    if raw & 0x80000000:
        raw -= 1 << 32
    return fpu._write_double(rd, float(raw))


def _to_int(value: float) -> Tuple[int, int]:
    if math.isnan(value):
        return 0, EXC_INVALID
    if value >= 2**31:
        return 0x7FFFFFFF, EXC_INVALID
    if value <= -(2**31) - 1:
        return 0x80000000, EXC_INVALID
    return int(value) & 0xFFFFFFFF, 0


def _stoi(fpu: Fpu, rs1: int, rs2: int, rd: int) -> int:
    bits, flags = _to_int(fpu._read_single(rs2))
    fpu.write_reg(rd, bits)
    return flags


def _dtoi(fpu: Fpu, rs1: int, rs2: int, rd: int) -> int:
    bits, flags = _to_int(fpu._read_double(rs2))
    fpu.write_reg(rd, bits)
    return flags


def _stod(fpu: Fpu, rs1: int, rs2: int, rd: int) -> int:
    return fpu._write_double(rd, fpu._read_single(rs2))


def _dtos(fpu: Fpu, rs1: int, rs2: int, rd: int) -> int:
    return fpu._write_single(rd, fpu._read_double(rs2))


def _compare(fpu: Fpu, a: float, b: float, signal_unordered: bool) -> int:
    if math.isnan(a) or math.isnan(b):
        fpu.fsr.fcc = Fcc.UNORDERED
        return EXC_INVALID if signal_unordered else 0
    if a == b:
        fpu.fsr.fcc = Fcc.EQUAL
    elif a < b:
        fpu.fsr.fcc = Fcc.LESS
    else:
        fpu.fsr.fcc = Fcc.GREATER
    return 0


def _cmps(fpu: Fpu, rs1: int, rs2: int, rd: int) -> int:
    return _compare(fpu, fpu._read_single(rs1), fpu._read_single(rs2), False)


def _cmpd(fpu: Fpu, rs1: int, rs2: int, rd: int) -> int:
    return _compare(fpu, fpu._read_double(rs1), fpu._read_double(rs2), False)


def _cmpes(fpu: Fpu, rs1: int, rs2: int, rd: int) -> int:
    return _compare(fpu, fpu._read_single(rs1), fpu._read_single(rs2), True)


def _cmped(fpu: Fpu, rs1: int, rs2: int, rd: int) -> int:
    return _compare(fpu, fpu._read_double(rs1), fpu._read_double(rs2), True)


_HANDLERS = {
    Opf.FMOVS: _mov,
    Opf.FNEGS: _neg,
    Opf.FABSS: _abs,
    Opf.FSQRTS: _sqrt_single,
    Opf.FSQRTD: _sqrt_double,
    Opf.FADDS: _binary_single(lambda a, b: a + b),
    Opf.FADDD: _binary_double(lambda a, b: a + b),
    Opf.FSUBS: _binary_single(lambda a, b: a - b),
    Opf.FSUBD: _binary_double(lambda a, b: a - b),
    Opf.FMULS: _binary_single(lambda a, b: a * b),
    Opf.FMULD: _binary_double(lambda a, b: a * b),
    Opf.FDIVS: _binary_single(lambda a, b: a / b),
    Opf.FDIVD: _binary_double(lambda a, b: a / b),
    Opf.FITOS: _itos,
    Opf.FITOD: _itod,
    Opf.FSTOI: _stoi,
    Opf.FDTOI: _dtoi,
    Opf.FSTOD: _stod,
    Opf.FDTOS: _dtos,
    Opf.FCMPS: _cmps,
    Opf.FCMPD: _cmpd,
    Opf.FCMPES: _cmpes,
    Opf.FCMPED: _cmped,
}
