"""The Floating-point State Register."""

from __future__ import annotations

import enum

from repro.ft.tmr import FlipFlopBank


class Fcc(enum.IntEnum):
    """Floating-point condition codes (FSR.fcc)."""

    EQUAL = 0
    LESS = 1
    GREATER = 2
    UNORDERED = 3


#: cexc/aexc bit positions (SPARC V8 manual 4.4): NX DZ UF OF NV.
EXC_INEXACT = 1 << 0
EXC_DIVZERO = 1 << 1
EXC_UNDERFLOW = 1 << 2
EXC_OVERFLOW = 1 << 3
EXC_INVALID = 1 << 4


class Fsr:
    """FSR fields: fcc, current/accrued exceptions, trap-enable mask.

    The FSR is a flip-flop register, TMR protected in the FT configuration.
    Trap enables (TEM) default to zero, so IEEE exceptions set flags rather
    than trap -- which is how the PARANOIA-style self-checks observe them.
    """

    def __init__(self, bank: FlipFlopBank) -> None:
        self._reg = bank.register("fpu.fsr", 32)

    @property
    def value(self) -> int:
        return self._reg.value

    def write(self, value: int) -> None:
        self._reg.load(value)

    @property
    def fcc(self) -> Fcc:
        return Fcc((self._reg.value >> 10) & 3)

    @fcc.setter
    def fcc(self, value: Fcc) -> None:
        self._reg.load((self._reg.value & ~(3 << 10)) | ((int(value) & 3) << 10))

    @property
    def tem(self) -> int:
        """Trap-enable mask (bits 27:23)."""
        return (self._reg.value >> 23) & 0x1F

    @property
    def cexc(self) -> int:
        """Current exception flags (bits 4:0)."""
        return self._reg.value & 0x1F

    @cexc.setter
    def cexc(self, flags: int) -> None:
        self._reg.load((self._reg.value & ~0x1F) | (flags & 0x1F))

    @property
    def aexc(self) -> int:
        """Accrued exception flags (bits 9:5)."""
        return (self._reg.value >> 5) & 0x1F

    def accrue(self, flags: int) -> None:
        """Set cexc and OR the flags into aexc (non-trapping behaviour)."""
        value = self._reg.value
        value = (value & ~0x1F) | (flags & 0x1F)
        value |= (flags & 0x1F) << 5
        self._reg.load(value)
