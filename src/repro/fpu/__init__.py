"""Behavioral SPARC V8 floating-point unit.

The PARANOIA test program of the heavy-ion campaign "checks the FPU
operation" (section 6); this package provides the FPU it exercises.  LEON
attaches the FPU through one of its two co-processor interfaces; here the
integer unit calls it directly, which is observationally equivalent for a
non-pipelined FPU.
"""

from repro.fpu.fpu import Fpu, FPU_TIMING
from repro.fpu.fsr import Fcc, Fsr

__all__ = ["Fcc", "Fpu", "FPU_TIMING", "Fsr"]
