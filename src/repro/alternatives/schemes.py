"""Behavioral models of the three FT schemes compared in section 7.

Each scheme classifies what happens to an SEU by *where* it lands
(:class:`UpsetClass`) and reports recovery latency, which together with the
area/timing numbers reproduces the section's comparison:

* **LEON-FT**: corrects register/memory soft errors with a 4-cycle restart
  or a forced cache miss; TMR masks flip-flop upsets in one cycle with an
  ~8% cycle-time penalty; combinational transients are (mostly) not covered
  -- accepted because their latching probability is low [4].
* **IBM S/390 G5**: the complete pipeline is duplicated up to the write
  stage; *any* error inside the pipeline (including combinational) is
  detected and the pipeline restarts from the last checkpoint -- "restarting
  of the pipeline takes several thousand clock cycles", and units where
  functional timing matters (bus interfaces, timers) cannot use the scheme.
* **Intel Itanium**: ECC and parity protect caches and TLBs; state-machine
  registers are not protected, so flip-flop upsets go undetected.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.iu import timing


class UpsetClass(enum.Enum):
    """Where an SEU lands (the paper's section 4.2 groups + combinational)."""

    CACHE_RAM = "cache-ram"
    REGISTER_FILE = "register-file"
    FLIP_FLOP = "flip-flop"
    PERIPHERAL_STATE = "peripheral-state"  # timers, bus interfaces
    COMBINATIONAL = "combinational"


@dataclass(frozen=True)
class UpsetOutcome:
    """What a scheme does with one upset."""

    detected: bool
    corrected: bool
    recovery_cycles: int

    @property
    def failed(self) -> bool:
        return not self.corrected


@dataclass(frozen=True)
class FtScheme:
    """Common interface: per-class outcomes plus cost figures."""

    name: str
    #: Area overhead of the protected logic (fraction, e.g. 1.0 = +100%).
    logic_area_overhead: float
    #: Cycle-time penalty fraction (e.g. 0.08 = 8%).
    timing_penalty: float
    #: Whether peripherals with functional timing can use the scheme.
    covers_peripherals: bool
    #: Outcome per upset class.
    outcomes: Dict[UpsetClass, UpsetOutcome]

    def handle(self, upset: UpsetClass) -> UpsetOutcome:
        return self.outcomes[upset]

    @property
    def worst_recovery_cycles(self) -> int:
        return max(outcome.recovery_cycles for outcome in self.outcomes.values()
                   if outcome.corrected)

    @property
    def realtime_suitable(self) -> bool:
        """Usable under hard real-time constraints: bounded, short recovery
        and protected peripheral/timer state."""
        return self.covers_peripherals and self.worst_recovery_cycles <= 100


#: Forced cache miss: a line refill from external memory (typical).
_CACHE_REFILL_CYCLES = 8


def LeonFtScheme() -> FtScheme:
    """LEON-FT as built in this repository (sections 4.3-4.6)."""
    return FtScheme(
        name="LEON-FT",
        logic_area_overhead=1.00,  # Table 1, logic-only
        timing_penalty=0.08,  # TMR voter, section 5.2
        covers_peripherals=True,  # TMR protects any register, incl. timers
        outcomes={
            UpsetClass.CACHE_RAM: UpsetOutcome(True, True, _CACHE_REFILL_CYCLES),
            UpsetClass.REGISTER_FILE: UpsetOutcome(True, True, timing.CYCLES_TRAP),
            UpsetClass.FLIP_FLOP: UpsetOutcome(True, True, 1),
            UpsetClass.PERIPHERAL_STATE: UpsetOutcome(True, True, 1),
            UpsetClass.COMBINATIONAL: UpsetOutcome(False, False, 0),
        },
    )


def IbmG5Scheme(restart_cycles: int = 3000) -> FtScheme:
    """IBM S/390 G5: duplicated pipeline, compare at the write stage [11].

    "The IBM scheme is better in the sense that timing is not affected by a
    TMR voter and that all types of errors are detected, not only soft
    errors in registers.  The scheme is worse from a real-time
    point-of-view since restarting of the pipeline takes several thousand
    clock cycles.  The scheme can also only be used where (functional)
    timing is not important; bus interfaces or timer units can not use this
    scheme without loosing their function."
    """
    pipeline_recovery = UpsetOutcome(True, True, restart_cycles)
    return FtScheme(
        name="IBM S/390 G5",
        logic_area_overhead=1.00,  # "the area overhead is similar to LEON, 100%"
        timing_penalty=0.0,  # no voter in the path
        covers_peripherals=False,
        outcomes={
            UpsetClass.CACHE_RAM: pipeline_recovery,
            UpsetClass.REGISTER_FILE: pipeline_recovery,
            UpsetClass.FLIP_FLOP: pipeline_recovery,
            # Peripheral state cannot be replayed: detected at compare, not
            # recoverable without losing the unit's function.
            UpsetClass.PERIPHERAL_STATE: UpsetOutcome(True, False, 0),
            UpsetClass.COMBINATIONAL: pipeline_recovery,
        },
    )


def ItaniumScheme() -> FtScheme:
    """Intel Itanium: ECC/parity on caches and TLBs [12].

    "The Intel implementation [uses] a mix of ECC and parity codes to
    detect and correct soft errors in caches and TLB memories.  State
    machine registers are not protected."
    """
    return FtScheme(
        name="Intel Itanium",
        logic_area_overhead=0.10,  # codes on RAM arrays only
        timing_penalty=0.0,
        covers_peripherals=False,
        outcomes={
            UpsetClass.CACHE_RAM: UpsetOutcome(True, True, _CACHE_REFILL_CYCLES),
            UpsetClass.REGISTER_FILE: UpsetOutcome(True, True, _CACHE_REFILL_CYCLES),
            UpsetClass.FLIP_FLOP: UpsetOutcome(False, False, 0),
            UpsetClass.PERIPHERAL_STATE: UpsetOutcome(False, False, 0),
            UpsetClass.COMBINATIONAL: UpsetOutcome(False, False, 0),
        },
    )


def all_schemes() -> List[FtScheme]:
    return [LeonFtScheme(), IbmG5Scheme(), ItaniumScheme()]


#: Upset-class mix for a LEON-like die: weighted by bit populations
#: (~150k cache bits, ~5k register-file bits, ~2.5k flip-flops of which a
#: few hundred are peripheral state) plus a small combinational-latch term
#: ("the probability of such events is low", section 4.2 [4]).
DEFAULT_UPSET_MIX = {
    UpsetClass.CACHE_RAM: 0.88,
    UpsetClass.REGISTER_FILE: 0.055,
    UpsetClass.FLIP_FLOP: 0.04,
    UpsetClass.PERIPHERAL_STATE: 0.015,
    UpsetClass.COMBINATIONAL: 0.01,
}


@dataclass
class SchemeEvaluation:
    """Monte-Carlo summary of one scheme under an upset mix."""

    scheme: str
    upsets: int
    detected: int
    corrected: int
    failures: int
    total_recovery_cycles: int

    @property
    def coverage(self) -> float:
        return self.corrected / self.upsets if self.upsets else 0.0

    @property
    def mean_recovery_cycles(self) -> float:
        return self.total_recovery_cycles / self.corrected if self.corrected else 0.0


def evaluate_scheme(scheme: FtScheme, upsets: int = 10_000, *,
                    mix: Optional[Dict[UpsetClass, float]] = None,
                    seed: int = 1) -> SchemeEvaluation:
    """Drive a scheme with an upset mix and tally outcomes."""
    mix = mix or DEFAULT_UPSET_MIX
    rng = random.Random(seed)
    classes = list(mix)
    weights = [mix[upset_class] for upset_class in classes]
    detected = corrected = failures = recovery = 0
    for _ in range(upsets):
        upset_class = rng.choices(classes, weights=weights, k=1)[0]
        outcome = scheme.handle(upset_class)
        if outcome.detected:
            detected += 1
        if outcome.corrected:
            corrected += 1
            recovery += outcome.recovery_cycles
        else:
            failures += 1
    return SchemeEvaluation(scheme.name, upsets, detected, corrected,
                            failures, recovery)
