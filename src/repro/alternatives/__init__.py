"""Alternative fault-tolerance schemes (paper section 7).

The paper compares LEON-FT against two contemporary FT processors: the IBM
S/390 G5 (full pipeline duplication with compare-and-restart) and the Intel
Itanium (ECC/parity on caches and TLBs, unprotected state-machine
registers).  This package models all three schemes behaviourally so the
comparison bench can reproduce the section's claims: similar area overhead
for IBM and LEON, thousands-of-cycles recovery for IBM vs 4 cycles for
LEON, and unprotected control state for Itanium.
"""

from repro.alternatives.schemes import (
    FtScheme,
    IbmG5Scheme,
    ItaniumScheme,
    LeonFtScheme,
    UpsetClass,
    UpsetOutcome,
    all_schemes,
    evaluate_scheme,
)

__all__ = [
    "FtScheme",
    "IbmG5Scheme",
    "ItaniumScheme",
    "LeonFtScheme",
    "UpsetClass",
    "UpsetOutcome",
    "all_schemes",
    "evaluate_scheme",
]
