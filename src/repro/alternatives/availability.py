"""Mission availability: combining upset rates, coverage and recovery.

The paper's design goals (section 2) are "performance, availability and
low cost".  This module closes the loop quantitatively: given an orbital
upset rate (from :mod:`repro.fault.rates`) and an FT scheme's coverage and
recovery latency (from :mod:`repro.alternatives.schemes`), it estimates

* the **unavailability due to recovery time** (corrected upsets x recovery
  cycles -- negligible for LEON's 4-cycle restarts, visible for the IBM
  scheme's thousands);
* the **system failure rate** (uncovered upsets), and the availability
  assuming each failure costs a watchdog-reset-and-reboot outage.

The absolute numbers inherit the rate model's calibration; the comparison
*between schemes on the same environment* is the meaningful output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.alternatives.schemes import (
    DEFAULT_UPSET_MIX,
    FtScheme,
    UpsetClass,
    all_schemes,
)
from repro.fault.rates import RatePredictor

#: Device clock for converting recovery cycles to seconds.
DEFAULT_CLOCK_HZ = 100e6

#: Outage per uncovered failure: watchdog timeout + reboot + state reload
#: (a typical on-board computer recovery budget).
DEFAULT_REBOOT_SECONDS = 30.0


@dataclass
class AvailabilityEstimate:
    """Availability of one scheme in one environment."""

    scheme: str
    environment: str
    upsets_per_day: float
    covered_fraction: float
    failures_per_day: float
    recovery_seconds_per_day: float
    outage_seconds_per_day: float

    @property
    def availability(self) -> float:
        day = 86_400.0
        down = self.recovery_seconds_per_day + self.outage_seconds_per_day
        return max(0.0, (day - down) / day)

    @property
    def mean_days_between_failures(self) -> float:
        if self.failures_per_day == 0:
            return float("inf")
        return 1.0 / self.failures_per_day


def estimate_availability(
    scheme: FtScheme,
    environment: str = "GEO",
    *,
    predictor: Optional[RatePredictor] = None,
    mix: Optional[Dict[UpsetClass, float]] = None,
    clock_hz: float = DEFAULT_CLOCK_HZ,
    reboot_seconds: float = DEFAULT_REBOOT_SECONDS,
) -> AvailabilityEstimate:
    """Fold the environment's upset rate through one scheme's outcomes."""
    predictor = predictor or RatePredictor()
    mix = mix or DEFAULT_UPSET_MIX
    rates = predictor.predict(environment)
    upsets_per_day = rates.upsets_per_day

    covered = failures = recovery_cycles = 0.0
    for upset_class, weight in mix.items():
        outcome = scheme.handle(upset_class)
        share = upsets_per_day * weight
        if outcome.corrected:
            covered += share
            recovery_cycles += share * outcome.recovery_cycles
        else:
            failures += share

    # The scheme's clock penalty stretches every recovery (and is already a
    # throughput cost, not unavailability, so it only scales the cycles).
    effective_clock = clock_hz / (1.0 + scheme.timing_penalty)
    recovery_seconds = recovery_cycles / effective_clock
    return AvailabilityEstimate(
        scheme=scheme.name,
        environment=environment,
        upsets_per_day=upsets_per_day,
        covered_fraction=covered / upsets_per_day if upsets_per_day else 1.0,
        failures_per_day=failures,
        recovery_seconds_per_day=recovery_seconds,
        outage_seconds_per_day=failures * reboot_seconds,
    )


def unprotected_estimate(environment: str = "GEO", *,
                         predictor: Optional[RatePredictor] = None,
                         reboot_seconds: float = DEFAULT_REBOOT_SECONDS
                         ) -> AvailabilityEstimate:
    """The no-FT baseline: every upset in live state is a failure."""
    predictor = predictor or RatePredictor()
    rates = predictor.predict(environment)
    return AvailabilityEstimate(
        scheme="unprotected",
        environment=environment,
        upsets_per_day=rates.upsets_per_day,
        covered_fraction=0.0,
        failures_per_day=rates.upsets_per_day,
        recovery_seconds_per_day=0.0,
        outage_seconds_per_day=rates.upsets_per_day * reboot_seconds,
    )


def compare_schemes(environment: str = "GEO") -> Dict[str, AvailabilityEstimate]:
    """All three section 7 schemes plus the unprotected baseline."""
    predictor = RatePredictor()
    estimates = {
        scheme.name: estimate_availability(scheme, environment,
                                           predictor=predictor)
        for scheme in all_schemes()
    }
    estimates["unprotected"] = unprotected_estimate(environment,
                                                    predictor=predictor)
    return estimates
