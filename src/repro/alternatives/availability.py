"""Mission availability: combining upset rates, coverage and recovery.

The paper's design goals (section 2) are "performance, availability and
low cost".  This module closes the loop quantitatively: given an orbital
upset rate (from :mod:`repro.fault.rates`) and an FT scheme's coverage and
recovery latency (from :mod:`repro.alternatives.schemes`), it estimates

* the **unavailability due to recovery time** (corrected upsets x recovery
  cycles -- negligible for LEON's 4-cycle restarts, visible for the IBM
  scheme's thousands);
* the **system failure rate** (uncovered upsets), and the availability
  assuming each failure costs a watchdog-reset-and-reboot outage.

The absolute numbers inherit the rate model's calibration; the comparison
*between schemes on the same environment* is the meaningful output.

Measured mode
-------------
The analytic estimate assumes a constant :data:`DEFAULT_REBOOT_SECONDS`
outage per failure.  Beam campaigns run with a recovery policy
(``campaign --recovery``) *measure* the outage distribution instead:
:func:`measure_availability` folds a set of
:class:`~repro.fault.campaign.CampaignResult` records into in-beam
availability, per-level downtime and MTTR, and
:func:`estimate_with_measured_outage` re-runs the orbital estimate with the
measured mean outage replacing the 30 s constant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from repro.alternatives.schemes import (
    DEFAULT_UPSET_MIX,
    FtScheme,
    UpsetClass,
    all_schemes,
)
from repro.fault.rates import RatePredictor

#: Device clock for converting recovery cycles to seconds.
DEFAULT_CLOCK_HZ = 100e6

#: Outage per uncovered failure: watchdog timeout + reboot + state reload
#: (a typical on-board computer recovery budget).
DEFAULT_REBOOT_SECONDS = 30.0


@dataclass
class AvailabilityEstimate:
    """Availability of one scheme in one environment."""

    scheme: str
    environment: str
    upsets_per_day: float
    covered_fraction: float
    failures_per_day: float
    recovery_seconds_per_day: float
    outage_seconds_per_day: float

    @property
    def availability(self) -> float:
        day = 86_400.0
        down = self.recovery_seconds_per_day + self.outage_seconds_per_day
        return max(0.0, (day - down) / day)

    @property
    def mean_days_between_failures(self) -> float:
        if self.failures_per_day == 0:
            return float("inf")
        return 1.0 / self.failures_per_day


def estimate_availability(
    scheme: FtScheme,
    environment: str = "GEO",
    *,
    predictor: Optional[RatePredictor] = None,
    mix: Optional[Dict[UpsetClass, float]] = None,
    clock_hz: float = DEFAULT_CLOCK_HZ,
    reboot_seconds: float = DEFAULT_REBOOT_SECONDS,
) -> AvailabilityEstimate:
    """Fold the environment's upset rate through one scheme's outcomes."""
    predictor = predictor or RatePredictor()
    mix = mix or DEFAULT_UPSET_MIX
    rates = predictor.predict(environment)
    upsets_per_day = rates.upsets_per_day

    covered = failures = recovery_cycles = 0.0
    for upset_class, weight in mix.items():
        outcome = scheme.handle(upset_class)
        share = upsets_per_day * weight
        if outcome.corrected:
            covered += share
            recovery_cycles += share * outcome.recovery_cycles
        else:
            failures += share

    # The scheme's clock penalty stretches every recovery (and is already a
    # throughput cost, not unavailability, so it only scales the cycles).
    effective_clock = clock_hz / (1.0 + scheme.timing_penalty)
    recovery_seconds = recovery_cycles / effective_clock
    return AvailabilityEstimate(
        scheme=scheme.name,
        environment=environment,
        upsets_per_day=upsets_per_day,
        covered_fraction=covered / upsets_per_day if upsets_per_day else 1.0,
        failures_per_day=failures,
        recovery_seconds_per_day=recovery_seconds,
        outage_seconds_per_day=failures * reboot_seconds,
    )


def unprotected_estimate(environment: str = "GEO", *,
                         predictor: Optional[RatePredictor] = None,
                         reboot_seconds: float = DEFAULT_REBOOT_SECONDS
                         ) -> AvailabilityEstimate:
    """The no-FT baseline: every upset in live state is a failure."""
    predictor = predictor or RatePredictor()
    rates = predictor.predict(environment)
    return AvailabilityEstimate(
        scheme="unprotected",
        environment=environment,
        upsets_per_day=rates.upsets_per_day,
        covered_fraction=0.0,
        failures_per_day=rates.upsets_per_day,
        recovery_seconds_per_day=0.0,
        outage_seconds_per_day=rates.upsets_per_day * reboot_seconds,
    )


def compare_schemes(environment: str = "GEO") -> Dict[str, AvailabilityEstimate]:
    """All three section 7 schemes plus the unprotected baseline."""
    predictor = RatePredictor()
    estimates = {
        scheme.name: estimate_availability(scheme, environment,
                                           predictor=predictor)
        for scheme in all_schemes()
    }
    estimates["unprotected"] = unprotected_estimate(environment,
                                                    predictor=predictor)
    return estimates


# -- measured mode -----------------------------------------------------------


@dataclass
class MeasuredAvailability:
    """Availability measured from recovery-enabled campaign runs.

    All times are device time at ``clock_hz``: uptime is the cycles the
    runs spent executing, downtime the cycles their recoveries charged.
    """

    runs: int
    clock_hz: float
    uptime_seconds: float
    downtime_seconds: float
    #: Recovery actions by ladder level, summed over all runs.
    recoveries: Dict[str, int] = field(default_factory=dict)
    #: Downtime by ladder level, seconds.
    downtime_by_level: Dict[str, float] = field(default_factory=dict)
    #: Recovered error-mode halts (the events the watchdog caught).
    halts: int = 0
    #: Runs whose recovery policy gave up (still ended failed).
    unrecovered_runs: int = 0

    @property
    def recovery_events(self) -> int:
        return sum(self.recoveries.values())

    @property
    def availability(self) -> float:
        total = self.uptime_seconds + self.downtime_seconds
        if total <= 0.0:
            return 1.0
        return self.uptime_seconds / total

    @property
    def mttr_seconds(self) -> float:
        """Mean downtime per recovery action."""
        events = self.recovery_events
        return self.downtime_seconds / events if events else 0.0

    @property
    def mean_outage_seconds(self) -> float:
        """Mean outage per *reset-level* incident -- the measured
        replacement for :data:`DEFAULT_REBOOT_SECONDS`.

        Pipeline restarts and cache flushes are recovery time, not
        outages; the resets (warm/cold) are what a mission notices."""
        resets = sum(count for level, count in self.recoveries.items()
                     if level in ("warm-reset", "cold-reboot"))
        if not resets:
            return self.mttr_seconds
        outage = sum(seconds for level, seconds in
                     self.downtime_by_level.items()
                     if level in ("warm-reset", "cold-reboot"))
        return outage / resets


def measure_availability(results: Iterable, *,
                         clock_hz: float = DEFAULT_CLOCK_HZ
                         ) -> MeasuredAvailability:
    """Fold recovery-enabled campaign results into measured availability.

    ``results`` are :class:`~repro.fault.campaign.CampaignResult` records
    (typically loaded from a ``campaign --results`` JSONL store)."""
    runs = 0
    up_cycles = 0
    down_cycles = 0
    recoveries: Dict[str, int] = {}
    downtime_by_level: Dict[str, int] = {}
    halts = 0
    unrecovered = 0
    for result in results:
        runs += 1
        down = result.downtime_cycles
        down_cycles += down
        up_cycles += max(result.cycles - down, 0)
        halts += result.halts
        unrecovered += int(result.unrecovered)
        for level, count in result.recoveries.items():
            recoveries[level] = recoveries.get(level, 0) + count
        for level, cycles in result.recovery_downtime.items():
            downtime_by_level[level] = downtime_by_level.get(level, 0) + cycles
    return MeasuredAvailability(
        runs=runs,
        clock_hz=clock_hz,
        uptime_seconds=up_cycles / clock_hz,
        downtime_seconds=down_cycles / clock_hz,
        recoveries=recoveries,
        downtime_by_level={level: cycles / clock_hz
                           for level, cycles in downtime_by_level.items()},
        halts=halts,
        unrecovered_runs=unrecovered,
    )


def estimate_with_measured_outage(
    scheme: FtScheme,
    measured: MeasuredAvailability,
    environment: str = "GEO",
    *,
    predictor: Optional[RatePredictor] = None,
    mix: Optional[Dict[UpsetClass, float]] = None,
) -> AvailabilityEstimate:
    """The orbital estimate with the *measured* mean outage per failure.

    Replaces the analytic :data:`DEFAULT_REBOOT_SECONDS` assumption with
    what the recovery ladder actually cost under beam."""
    return estimate_availability(
        scheme, environment,
        predictor=predictor,
        mix=mix,
        clock_hz=measured.clock_hz,
        reboot_seconds=measured.mean_outage_seconds,
    )
