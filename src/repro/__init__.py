"""LEON-FT: a portable, fault-tolerant SPARC V8 processor — in simulation.

Reproduction of J. Gaisler, "A Portable and Fault-Tolerant Microprocessor
Based on the SPARC V8 Architecture" (DSN 2002): a bit-accurate behavioral
model of the LEON-FT processor (SPARC V8 integer unit, FPU, parity-protected
caches, BCH/parity-protected register file, TMR flip-flops, EDAC external
memory, AMBA buses, peripherals) plus a Monte-Carlo heavy-ion beam and the
campaign harness that regenerates the paper's tables and figures.

Quickstart::

    from repro import LeonConfig, LeonSystem, assemble

    system = LeonSystem(LeonConfig.fault_tolerant())
    program = assemble('''
        set 0x40001000, %g1
        set 42, %g2
        st %g2, [%g1]
        done: ba done
        nop
    ''', base=0x40000000)
    system.load_program(program)
    system.run(stop_pc=program.address_of("done"))
    assert system.read_word(0x40001000) == 42
"""

from repro.core.config import CacheConfig, FtConfig, LeonConfig, MemoryConfig
from repro.core.master_checker import CompareError, LockStepReport, MasterChecker
from repro.core.statistics import ErrorCounters, PerfCounters
from repro.core.system import LeonSystem, RunResult
from repro.ft.protection import ProtectionScheme
from repro.recovery import (
    RecoveryController,
    RecoveryEvent,
    RecoveryLevel,
    RecoveryPolicy,
    resolve_policy,
)
from repro.sparc.asm import Program, assemble
from repro.sparc.disasm import disassemble
from repro.telemetry import (
    NULL_TELEMETRY,
    JsonlTraceSink,
    MemorySink,
    Telemetry,
)

__version__ = "1.0.0"

__all__ = [
    "CacheConfig",
    "CompareError",
    "ErrorCounters",
    "FtConfig",
    "LeonConfig",
    "LeonSystem",
    "JsonlTraceSink",
    "LockStepReport",
    "MasterChecker",
    "MemoryConfig",
    "MemorySink",
    "NULL_TELEMETRY",
    "PerfCounters",
    "Program",
    "ProtectionScheme",
    "RecoveryController",
    "RecoveryEvent",
    "RecoveryLevel",
    "RecoveryPolicy",
    "RunResult",
    "Telemetry",
    "assemble",
    "disassemble",
    "resolve_policy",
    "__version__",
]
