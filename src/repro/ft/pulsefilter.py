"""Skewed-clock pulse filtering for combinational transients (section 9).

"Although no indications of combinational SEU errors were seen for the
ATC35 device, the separate clock trees for the TMR cells makes it possible
to form a pulse filter on the inputs to the flip-flops.  By skewing the
three clocks, any pulse shorter than the skew would only be latched by one
of the flip-flops in the cell, and be removed by the voter."

This module models that proposed (future-work) scheme so its feasibility
can be evaluated the way the paper suggests:

* a combinational SET is a voltage pulse of some duration arriving at a
  TMR cell's data input around a clock edge;
* with *aligned* clocks, all three lanes sample at the same instant: if
  the pulse covers the edge, all three latch the wrong value -- the voter
  cannot help (this is why plain TMR does not protect against SETs);
* with clocks skewed by ``skew`` per lane, a pulse shorter than the skew
  can cover at most one lane's sampling instant; the corrupted lane is
  out-voted and scrubbed on the next edge.

The model works on pulse/skew geometry: lane *i* samples at time
``i * skew``; the pulse occupies ``[arrival, arrival + duration)``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.errors import ConfigurationError
from repro.ft.tmr import TMR_LANES, TmrRegister


@dataclass(frozen=True)
class TransientPulse:
    """One combinational single-event transient reaching a register input.

    Times are in nanoseconds relative to the nominal clock edge; a pulse
    *latches* in a lane when it covers that lane's sampling instant.
    """

    arrival_ns: float
    duration_ns: float
    bit: int  # which data bit the glitched logic cone feeds

    def covers(self, sample_ns: float) -> bool:
        return self.arrival_ns <= sample_ns < self.arrival_ns + self.duration_ns


@dataclass
class PulseFilterResult:
    """Outcome of one transient against one TMR cell."""

    lanes_hit: List[int]
    masked: bool  # voter output unaffected
    latched: bool  # at least one lane captured the pulse


class SkewedClockTmr:
    """A TMR cell with per-lane clock skew (the section 9 proposal).

    ``skew_ns = 0`` models the baseline LEON-FT cell (aligned clock trees):
    a pulse covering the edge corrupts all three lanes at once.
    """

    def __init__(self, register: TmrRegister, skew_ns: float = 0.0) -> None:
        if not register.tmr:
            raise ConfigurationError("pulse filtering needs a TMR register")
        if skew_ns < 0:
            raise ConfigurationError("clock skew cannot be negative")
        self.register = register
        self.skew_ns = skew_ns

    @property
    def sample_times(self) -> List[float]:
        return [lane * self.skew_ns for lane in range(TMR_LANES)]

    def apply(self, pulse: TransientPulse) -> PulseFilterResult:
        """Clock the cell with ``pulse`` on its input; corrupt every lane
        whose sampling instant the pulse covers."""
        lanes_hit = [lane for lane, sample in enumerate(self.sample_times)
                     if pulse.covers(sample)]
        before = self.register.value
        for lane in lanes_hit:
            self.register.inject(pulse.bit, lane=lane)
        masked = self.register.value == before
        return PulseFilterResult(lanes_hit, masked, bool(lanes_hit))

    def max_filtered_pulse_ns(self) -> float:
        """Longest pulse guaranteed to hit at most one lane: the skew."""
        return self.skew_ns


@dataclass
class SetCampaignResult:
    """Monte-Carlo evaluation of a skew setting against a SET population."""

    skew_ns: float
    pulses: int
    latched: int
    corrupted: int  # voter output changed (unrecoverable by TMR alone)

    @property
    def corruption_rate(self) -> float:
        return self.corrupted / self.pulses if self.pulses else 0.0


def evaluate_skew(
    skew_ns: float,
    *,
    pulses: int = 2000,
    mean_pulse_ns: float = 0.3,
    window_ns: float = 2.0,
    width_bits: int = 32,
    seed: int = 1,
    rng: Optional[random.Random] = None,
) -> SetCampaignResult:
    """Fire a population of random SETs at a skewed TMR cell.

    Pulse durations are exponential with ``mean_pulse_ns`` (typical SET
    widths are a few hundred ps on 0.25-0.35 um processes [4]); arrivals
    are uniform in ``[-window_ns, window_ns)`` around the edge.
    """
    rng = rng or random.Random(seed)
    latched = corrupted = 0
    for index in range(pulses):
        register = TmrRegister(f"set-{index}", width_bits, tmr=True)
        register.load(0)
        cell = SkewedClockTmr(register, skew_ns)
        pulse = TransientPulse(
            arrival_ns=rng.uniform(-window_ns, window_ns),
            duration_ns=rng.expovariate(1.0 / mean_pulse_ns),
            bit=rng.randrange(width_bits),
        )
        result = cell.apply(pulse)
        if result.latched:
            latched += 1
        if not result.masked:
            corrupted += 1
    return SetCampaignResult(skew_ns, pulses, latched, corrupted)
