"""Triple modular redundancy for the processor flip-flops (paper section 4.5).

The LEON integer unit contains roughly 2 500 D-flip-flops holding pipeline
registers, state machines and status/control functions.  In the FT
configuration every flip-flop is implemented as a TMR cell: three flip-flops
clocked continuously, with a majority voter on the outputs.  An SEU in one
lane is out-voted immediately (the voter output never glitches) and is
*scrubbed* on the next clock edge when all three lanes reload the voted
value.

Each of the three lanes can be driven by a separate clock tree, so an SEU in
one clock-tree buffer -- corrupting the state of an entire lane of 2 500
flip-flops -- is also removed after one clock edge.  A strike on the single
clock pad is not tolerated (it reaches all three trees), but its large
capacitance makes that event unlikely; the beam model treats the pad as
having a vanishing cross-section.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import InjectionError

#: Number of redundant lanes in a TMR cell.
TMR_LANES = 3


def vote3(a: int, b: int, c: int) -> int:
    """Bitwise 2-of-3 majority of three equal-width integers."""
    return (a & b) | (a & c) | (b & c)


class Voter:
    """A majority voter over three lanes, with an error-observation output.

    ``disagreement`` reports whether the last vote saw any lane differ from
    the majority -- hardware LEON does *not* expose this (the paper notes the
    TMR cross-section could not be measured because "no SEU monitoring
    capability is implemented in the TMR cells"); the simulator keeps the
    count available for analysis but campaigns that reproduce the paper
    ignore it.
    """

    __slots__ = ("disagreements",)

    def __init__(self) -> None:
        self.disagreements = 0  # state: diag -- captured under FlipFlopBank's 'diag' key

    def vote(self, lanes: Tuple[int, int, int]) -> int:
        value = vote3(*lanes)
        if not lanes[0] == lanes[1] == lanes[2]:
            self.disagreements += 1
        return value


class TmrRegister:
    """One TMR-protected register of ``width`` bits.

    Without TMR (``tmr=False``) the register is a single flip-flop rank and
    an injected SEU directly corrupts the visible value.
    """

    __slots__ = ("name", "width", "tmr", "_mask", "_lanes", "voter",
                 "_dirty")

    def __init__(self, name: str, width: int, *, tmr: bool = True, reset: int = 0) -> None:
        if width <= 0:
            raise InjectionError(f"register {name!r} must have positive width")
        self.name = name
        self.width = width
        self.tmr = tmr
        self._mask = (1 << width) - 1
        reset &= self._mask
        self._lanes: List[int] = [reset] * (TMR_LANES if tmr else 1)
        self.voter = Voter()  # state: diag -- voter tally captured by FlipFlopBank under 'diag'
        # Fast path: lanes are known-equal until an injection marks the
        # register dirty, so the common case skips the majority vote.
        self._dirty = False

    @property
    def value(self) -> int:
        """The (voted) register output."""
        if not self._dirty:
            return self._lanes[0]
        if self.tmr:
            return self.voter.vote((self._lanes[0], self._lanes[1], self._lanes[2]))
        return self._lanes[0]

    def load(self, value: int) -> None:
        """Clock a new value into every lane (a normal register write).

        This is also the *scrub* operation: any lane corrupted by an SEU is
        overwritten, which in hardware happens on every clock edge.
        """
        value &= self._mask
        lanes = self._lanes
        if len(lanes) == 3:
            lanes[0] = lanes[1] = lanes[2] = value
        else:
            lanes[0] = value
        self._dirty = False

    def refresh(self) -> None:
        """Model one clock edge with unchanged data (recirculation).

        The voted output is reloaded into all lanes, removing any single-lane
        SEU -- the "automatically removed within one clock cycle" behaviour
        of section 4.5.
        """
        self.load(self.value)

    def inject(self, bit: int, lane: int = 0) -> None:
        """Flip one stored bit in one lane (an SEU strike)."""
        if not 0 <= bit < self.width:
            raise InjectionError(f"bit {bit} out of range for {self.name!r} (width {self.width})")
        if not 0 <= lane < len(self._lanes):
            raise InjectionError(f"lane {lane} out of range for {self.name!r}")
        self._lanes[lane] ^= 1 << bit
        self._dirty = True

    def lane_value(self, lane: int) -> int:
        """Raw content of one lane (for tests and the injector)."""
        return self._lanes[lane]

    def capture(self) -> Tuple[Tuple[int, ...], bool]:
        """Bit-exact lane contents plus the dirty fast-path flag."""
        return (tuple(self._lanes), self._dirty)

    def restore(self, state: Tuple[Tuple[int, ...], bool]) -> None:
        lanes, dirty = state
        if len(lanes) != len(self._lanes):
            raise InjectionError(
                f"register {self.name!r}: snapshot has {len(lanes)} lanes, "
                f"expected {len(self._lanes)}")
        self._lanes = list(lanes)
        self._dirty = bool(dirty)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TmrRegister({self.name!r}, width={self.width}, value={self.value:#x})"


@dataclass
class ClockTree:
    """One of the three clock trees feeding the TMR lanes.

    An SEU in a clock-tree buffer can corrupt the whole lane it drives; the
    corruption is removed on the following clock edge (section 4.5).  A
    strike on the shared clock *pad* would corrupt all three lanes and is
    not tolerated; the beam model gives the pad a negligible cross-section.
    """

    lane: int
    strikes: int = 0


class FlipFlopBank:
    """The full population of on-chip flip-flops, addressable for injection.

    Registers are created by name; the bank tracks the total bit count so
    the beam model can weight strikes by storage size (the paper's LEON has
    ~2 500 flip-flops against ~170 kbit of RAM).
    """

    def __init__(self, *, tmr: bool = True,
                 separate_clock_trees: bool = True) -> None:
        self.tmr = tmr
        #: Section 4.5 / figure 3: with separate clock trees a glitched
        #: tree corrupts a single lane (voted away); with one shared tree
        #: a clock glitch reaches all three lanes at once and TMR cannot
        #: help -- the reason the FT implementation triplicates the trees.
        self.separate_clock_trees = separate_clock_trees
        self._registers: Dict[str, TmrRegister] = {}
        self.clock_trees = [ClockTree(lane) for lane in range(TMR_LANES)]

    def register(self, name: str, width: int, reset: int = 0) -> TmrRegister:
        """Create (or fetch) a named register of ``width`` bits."""
        existing = self._registers.get(name)
        if existing is not None:
            if existing.width != width:
                raise InjectionError(
                    f"register {name!r} re-registered with width {width}, had {existing.width}"
                )
            return existing
        reg = TmrRegister(name, width, tmr=self.tmr, reset=reset)
        self._registers[name] = reg
        return reg

    def get(self, name: str) -> TmrRegister:
        try:
            return self._registers[name]
        except KeyError:
            raise InjectionError(f"no flip-flop register named {name!r}") from None

    @property
    def total_bits(self) -> int:
        """Architectural flip-flop count (one per bit, lanes not counted)."""
        return sum(reg.width for reg in self._registers.values())

    @property
    def total_cells(self) -> int:
        """Physical flip-flop count (3x when TMR is enabled)."""
        lanes = TMR_LANES if self.tmr else 1
        return self.total_bits * lanes

    def names(self) -> List[str]:
        return list(self._registers)

    def registers(self) -> Iterator[TmrRegister]:
        return iter(self._registers.values())

    def locate_bit(self, flat_index: int) -> Tuple[TmrRegister, int]:
        """Map a flat bit index in ``[0, total_bits)`` to (register, bit).

        The beam model picks a uniform flat index to decide where a strike
        lands, mirroring a uniform spatial distribution over the flip-flop
        area.
        """
        if flat_index < 0:
            raise InjectionError("flat index must be non-negative")
        for reg in self._registers.values():
            if flat_index < reg.width:
                return reg, flat_index
            flat_index -= reg.width
        raise InjectionError("flat index beyond flip-flop population")

    def inject_flat(self, flat_index: int, lane: int = 0) -> str:
        """Inject an SEU at a flat bit index; returns the register name."""
        reg, bit = self.locate_bit(flat_index)
        reg.inject(bit, lane=lane)
        return reg.name

    def inject_clock_tree(self, lane: int, corrupt_value: Optional[int] = None) -> int:
        """Model an SEU in one clock tree: corrupt lane ``lane`` of *every*
        register.

        Each register's lane is XORed with a pseudo-pattern derived from
        ``corrupt_value`` (all-ones when ``None``), standing in for the
        arbitrary garbage a glitched clock edge latches.  Returns the number
        of registers touched.  On the next :meth:`scrub` (clock edge) all
        corruption disappears -- unless TMR is disabled, in which case a
        clock-tree strike is catastrophic.
        """
        if not 0 <= lane < TMR_LANES:
            raise InjectionError(f"clock tree lane {lane} out of range")
        self.clock_trees[lane].strikes += 1
        # With a single shared tree (no triplication), the glitch clocks
        # every lane of every register simultaneously.
        lanes = [lane] if self.separate_clock_trees else list(range(TMR_LANES))
        touched = 0
        for reg in self._registers.values():
            pattern = reg._mask if corrupt_value is None else (corrupt_value & reg._mask)
            for struck_lane in lanes:
                if struck_lane >= len(reg._lanes):
                    continue
                reg._lanes[struck_lane] ^= pattern
            reg._dirty = True
            touched += 1
        return touched

    def scrub(self) -> None:
        """Model one clock edge over the whole bank (recirculate all data).

        Only registers touched by an injection actually need the vote; the
        rest recirculate their (known-equal) lanes for free.
        """
        for reg in self._registers.values():
            if reg._dirty:
                reg.refresh()

    def lane_disagreements(self) -> int:
        """Total voter disagreements observed so far (diagnostic only)."""
        return sum(reg.voter.disagreements for reg in self._registers.values())

    # -- state capture ----------------------------------------------------------

    def capture(self) -> dict:
        """Bit-exact lane state of every register; observation counts under
        ``"diag"`` (excluded from architectural digests)."""
        return {
            "registers": {name: reg.capture()
                          for name, reg in self._registers.items()},
            "diag": {
                "disagreements": {name: reg.voter.disagreements
                                  for name, reg in self._registers.items()},
                "clock_strikes": tuple(tree.strikes for tree in self.clock_trees),
            },
        }

    def restore(self, state: dict) -> None:
        registers = state["registers"]
        if set(registers) != set(self._registers):
            missing = set(self._registers) ^ set(registers)
            raise InjectionError(
                f"flip-flop snapshot register-set mismatch: {sorted(missing)}")
        for name, reg in self._registers.items():
            reg.restore(registers[name])
        diag = state.get("diag") or {}
        disagreements = diag.get("disagreements", {})
        for name, reg in self._registers.items():
            reg.voter.disagreements = int(disagreements.get(name, 0))
        strikes = diag.get("clock_strikes", ())
        for tree, count in zip(self.clock_trees, strikes):
            tree.strikes = int(count)
