"""The (32,7) BCH checksum used for the register file and the EDAC unit.

The paper (sections 4.4 and 4.6) protects the register file and external
memory with "a standard (32,7) BCH code, correcting one and detecting two
errors per 32-bit word" [Chen & Hsiao, IBM J. R&D 1984].  We implement it as
an odd-weight-column (Hsiao) SEC-DED code: 7 check bits over 32 data bits.

Construction
------------
Every bit of the 39-bit codeword is assigned a 7-bit column of the
parity-check matrix ``H``:

* check bit *i* gets the unit column ``1 << i``;
* each data bit gets a distinct column of weight 3 (there are C(7,3) = 35
  such columns; we use the first 32 in ascending numeric order).

On read the *syndrome* is the XOR of the columns of every flipped bit:

* syndrome 0                      -> no error;
* syndrome equals some column     -> single error at that bit, corrected;
* any other syndrome              -> uncorrectable (double) error.

All odd-weight columns guarantee that a double error always produces an
even-weight syndrome, which can never equal a (single-error) odd-weight
column -- so no double error is ever silently mis-corrected.
"""

from __future__ import annotations

from typing import Dict, List

from repro.ft.protection import CheckResult, ErrorKind, ProtectionScheme

#: Number of check bits per 32-bit data word.
BCH_CHECK_BITS = 7


def _weight(value: int) -> int:
    return bin(value).count("1")


def _build_columns() -> List[int]:
    """Columns of H for data bits 0..31: the 32 smallest weight-3 7-bit values."""
    columns = [c for c in range(1, 128) if _weight(c) == 3]
    return columns[:32]


_DATA_COLUMNS: List[int] = _build_columns()
_CHECK_COLUMNS: List[int] = [1 << i for i in range(BCH_CHECK_BITS)]

# Syndrome -> (is_data_bit, bit_index) for every correctable syndrome.
_SYNDROME_TABLE: Dict[int, tuple] = {}
for _i, _col in enumerate(_DATA_COLUMNS):
    _SYNDROME_TABLE[_col] = (True, _i)
for _i, _col in enumerate(_CHECK_COLUMNS):
    _SYNDROME_TABLE[_col] = (False, _i)


def _build_byte_tables():
    """Per-byte XOR lookup tables so encoding is four table hits."""
    tables = []
    for byte_index in range(4):
        table = []
        for byte in range(256):
            check = 0
            for bit in range(8):
                if (byte >> bit) & 1:
                    check ^= _DATA_COLUMNS[byte_index * 8 + bit]
            table.append(check)
        tables.append(table)
    return tables


_BYTE_TABLES = _build_byte_tables()
_T0, _T1, _T2, _T3 = _BYTE_TABLES


def bch_encode(data: int) -> int:
    """Compute the 7 check bits for a 32-bit data word."""
    data &= 0xFFFFFFFF
    return (_T0[data & 0xFF]
            ^ _T1[(data >> 8) & 0xFF]
            ^ _T2[(data >> 16) & 0xFF]
            ^ _T3[(data >> 24) & 0xFF])


def bch_syndrome(data: int, check: int) -> int:
    """Syndrome of a stored (data, check) pair; zero means consistent."""
    return bch_encode(data) ^ (check & 0x7F)


class BchCodec:
    """(32,7) BCH/Hsiao SEC-DED codec.

    ``check`` corrects single-bit errors (in data *or* check bits) and
    reports double-bit errors as ``ErrorKind.DETECTED``.
    """

    scheme = ProtectionScheme.BCH

    def encode(self, data: int) -> int:
        return bch_encode(data)

    def check(self, data: int, check: int) -> CheckResult:
        data &= 0xFFFFFFFF
        check &= 0x7F
        syndrome = bch_encode(data) ^ check
        if syndrome == 0:
            return CheckResult(ErrorKind.NONE, data, check)
        location = _SYNDROME_TABLE.get(syndrome)
        if location is None:
            return CheckResult(ErrorKind.DETECTED, data, check)
        in_data, bit = location
        if in_data:
            data ^= 1 << bit
        return CheckResult(ErrorKind.CORRECTABLE, data, bch_encode(data))
