"""Common protection-scheme interface shared by parity and BCH codecs.

Every protected storage element in the design (cache tag/data words, register
file words, external memory words) stores a 32-bit data word plus a small
number of *check bits*.  A :class:`Codec` computes the check bits on write and
classifies the (data, check) pair on read.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Protocol

from repro.errors import ConfigurationError


class ProtectionScheme(enum.Enum):
    """Which error-detection/correction code protects a storage group.

    Mirrors the options of the VHDL configuration package (paper section 5.1):
    register file and cache RAMs can each use no protection, one parity bit,
    two parity bits (odd/even data bits), or the (32,7) BCH checksum.
    """

    NONE = "none"
    PARITY = "parity"
    DUAL_PARITY = "dual-parity"
    BCH = "bch"

    @property
    def check_bits(self) -> int:
        """Number of check bits stored per 32-bit word."""
        return _CHECK_BITS[self]


_CHECK_BITS = {
    ProtectionScheme.NONE: 0,
    ProtectionScheme.PARITY: 1,
    ProtectionScheme.DUAL_PARITY: 2,
    ProtectionScheme.BCH: 7,
}


class ErrorKind(enum.Enum):
    """Classification of a protected word on read."""

    NONE = "none"  # check bits consistent with data
    CORRECTABLE = "correctable"  # single error, codec can repair it
    DETECTED = "detected"  # error detected but not locatable by this code
    # Undetected errors do not produce an ErrorKind -- by definition the
    # codec reports NONE; campaigns discover them through checksums or the
    # master/checker compare, exactly as the paper's test setup does.


@dataclass(frozen=True)
class CheckResult:
    """Outcome of checking one stored word.

    Attributes:
        kind: the error classification.
        data: the (possibly corrected) 32-bit data word.  For
            ``ErrorKind.DETECTED`` this is the raw stored data.
        check: the recomputed check bits for the corrected data.
    """

    kind: ErrorKind
    data: int
    check: int


class Codec(Protocol):
    """Protocol implemented by every protection codec."""

    scheme: ProtectionScheme

    def encode(self, data: int) -> int:
        """Return the check bits for a 32-bit data word."""

    def check(self, data: int, check: int) -> CheckResult:
        """Classify a stored (data, check) pair, correcting if possible."""


class NullCodec:
    """Codec for unprotected storage: zero check bits, never reports errors."""

    scheme = ProtectionScheme.NONE

    def encode(self, data: int) -> int:
        return 0

    def check(self, data: int, check: int) -> CheckResult:
        return CheckResult(ErrorKind.NONE, data & 0xFFFFFFFF, 0)


def make_codec(scheme: ProtectionScheme) -> Codec:
    """Build the codec for a :class:`ProtectionScheme`.

    Raises:
        ConfigurationError: if the scheme is unknown.
    """
    # Imported here to avoid a circular import at module load time.
    from repro.ft.bch import BchCodec
    from repro.ft.parity import DualParityCodec, SingleParityCodec

    codecs = {
        ProtectionScheme.NONE: NullCodec,
        ProtectionScheme.PARITY: SingleParityCodec,
        ProtectionScheme.DUAL_PARITY: DualParityCodec,
        ProtectionScheme.BCH: BchCodec,
    }
    try:
        return codecs[scheme]()
    except KeyError:  # pragma: no cover - enum exhausts the dict
        raise ConfigurationError(f"unknown protection scheme: {scheme!r}") from None


def describe(scheme: ProtectionScheme) -> str:
    """Human-readable one-line description of a scheme (used in reports)."""
    descriptions = {
        ProtectionScheme.NONE: "unprotected",
        ProtectionScheme.PARITY: "1 parity bit per word (detects odd-count errors)",
        ProtectionScheme.DUAL_PARITY: (
            "2 parity bits per word, odd/even data bits "
            "(detects any double error in adjacent cells)"
        ),
        ProtectionScheme.BCH: "(32,7) BCH checksum (corrects 1, detects 2 errors)",
    }
    return descriptions[scheme]
