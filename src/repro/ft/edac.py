"""On-chip EDAC protecting external memory (paper section 4.6).

External PROM/SRAM is stored with a (32,7) BCH codeword per 32-bit word.
Error detection and correction happens during cache refill without timing
penalty.  Because the caches refill whole lines speculatively, an
uncorrectable error is *not* signalled immediately; instead the cache leaves
the corresponding per-word valid bit clear (sub-blocking) so that a later
access by the processor misses, re-fetches, and only then takes a precise
data/instruction error trap.  The EDAC itself just classifies words; the
sub-blocking policy lives in :mod:`repro.cache`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.ft.bch import BchCodec
from repro.ft.protection import ErrorKind


class EdacStatus(enum.Enum):
    """Result of passing one word through the EDAC."""

    OK = "ok"
    CORRECTED = "corrected"  # single error repaired on the fly
    UNCORRECTABLE = "uncorrectable"  # double error; word must not be used


@dataclass(frozen=True)
class EdacResult:
    """One EDAC read: the delivered data word and its status."""

    data: int
    status: EdacStatus
    check: int


class Edac:
    """The EDAC unit: a (32,7) BCH codec plus correction/error counters."""

    def __init__(self) -> None:
        self._codec = BchCodec()  # state: wiring -- stateless coder
        self.corrected = 0  # state: diag -- tally for tests; campaign counts live in ErrorCounters
        self.uncorrectable = 0  # state: diag -- tally for tests; campaign counts live in ErrorCounters

    def encode(self, data: int) -> int:
        """Check bits to store alongside a data word on write."""
        return self._codec.encode(data)

    def read(self, data: int, check: int) -> EdacResult:
        """Classify and (if possible) correct one stored word on read."""
        result = self._codec.check(data, check)
        if result.kind is ErrorKind.NONE:
            return EdacResult(result.data, EdacStatus.OK, result.check)
        if result.kind is ErrorKind.CORRECTABLE:
            self.corrected += 1
            return EdacResult(result.data, EdacStatus.CORRECTED, result.check)
        self.uncorrectable += 1
        return EdacResult(result.data, EdacStatus.UNCORRECTABLE, result.check)

    def reset_counters(self) -> None:
        self.corrected = 0
        self.uncorrectable = 0
