"""Fault-tolerance primitives used throughout the LEON-FT design.

The paper (section 4.2) divides the sequential cells of the processor into
three groups and protects each with a scheme matched to its structure:

* cache RAMs           -- one or two parity bits per tag/data word
                          (:mod:`repro.ft.parity`), checked on access with a
                          forced cache miss on error;
* the register file    -- one/two parity bits or a (32,7) BCH checksum
                          (:mod:`repro.ft.bch`), checked in the execute stage
                          with a pipeline restart on a correctable error;
* flip-flops           -- triple modular redundancy with a voter and three
                          separate clock trees (:mod:`repro.ft.tmr`);
* external memory      -- an on-chip EDAC implementing the same (32,7) BCH
                          code (:mod:`repro.ft.edac`).
"""

from repro.ft.bch import BCH_CHECK_BITS, BchCodec
from repro.ft.edac import Edac, EdacResult, EdacStatus
from repro.ft.parity import (
    DualParityCodec,
    SingleParityCodec,
    parity32,
    parity_even_bits,
    parity_odd_bits,
)
from repro.ft.protection import CheckResult, Codec, ErrorKind, ProtectionScheme, make_codec
from repro.ft.pulsefilter import (
    PulseFilterResult,
    SetCampaignResult,
    SkewedClockTmr,
    TransientPulse,
    evaluate_skew,
)
from repro.ft.tmr import ClockTree, FlipFlopBank, TmrRegister, Voter

__all__ = [
    "BCH_CHECK_BITS",
    "BchCodec",
    "CheckResult",
    "ClockTree",
    "Codec",
    "DualParityCodec",
    "Edac",
    "EdacResult",
    "EdacStatus",
    "ErrorKind",
    "FlipFlopBank",
    "ProtectionScheme",
    "PulseFilterResult",
    "SetCampaignResult",
    "SingleParityCodec",
    "SkewedClockTmr",
    "TmrRegister",
    "TransientPulse",
    "Voter",
    "evaluate_skew",
    "make_codec",
    "parity32",
    "parity_even_bits",
    "parity_odd_bits",
]
