"""Parity codes for cache RAMs and the register file (paper sections 4.3/4.4).

The cache RAMs are in the processor's critical timing path, so LEON protects
them with the cheapest possible code: one parity bit per tag or data word,
checked in parallel with tag comparison so no cycle-time is lost.  A parity
error forces a cache miss and the uncorrupted copy is re-fetched from
external memory (the data cache is write-through, so a second copy always
exists).

One parity bit only detects an odd number of errors.  In dense RAM blocks a
single ion strike can upset several *adjacent* cells; if the block stores one
word per physical row, two of those upsets can land in the same word and
escape a single parity bit.  LEON therefore optionally stores **two** parity
bits per word -- one over the odd-numbered data bits and one over the
even-numbered bits -- which detects any double error in adjacent cells
(adjacent cells always have opposite index parity).
"""

from __future__ import annotations

from repro.ft.protection import CheckResult, ErrorKind, ProtectionScheme

_EVEN_MASK = 0x55555555  # bits 0, 2, 4, ... of a 32-bit word
_ODD_MASK = 0xAAAAAAAA  # bits 1, 3, 5, ...


def parity32(value: int) -> int:
    """Even parity (XOR reduction) of the low 32 bits of ``value``."""
    value &= 0xFFFFFFFF
    value ^= value >> 16
    value ^= value >> 8
    value ^= value >> 4
    value ^= value >> 2
    value ^= value >> 1
    return value & 1


def parity_even_bits(value: int) -> int:
    """Parity over the even-numbered bits (0, 2, 4, ...) of a word."""
    return parity32(value & _EVEN_MASK)


def parity_odd_bits(value: int) -> int:
    """Parity over the odd-numbered bits (1, 3, 5, ...) of a word."""
    return parity32(value & _ODD_MASK)


class SingleParityCodec:
    """One parity bit per 32-bit word.

    Detects any odd number of bit errors (in data or in the check bit
    itself); an even number of errors is undetected.  Parity alone cannot
    locate an error, so every detected error is ``ErrorKind.DETECTED``.
    """

    scheme = ProtectionScheme.PARITY

    def encode(self, data: int) -> int:
        return parity32(data)

    def check(self, data: int, check: int) -> CheckResult:
        data &= 0xFFFFFFFF
        if parity32(data) == (check & 1):
            return CheckResult(ErrorKind.NONE, data, check & 1)
        return CheckResult(ErrorKind.DETECTED, data, parity32(data))


class DualParityCodec:
    """Two parity bits per word: bit 0 over even data bits, bit 1 over odd.

    Detects every single error and every double error whose two bits fall in
    *adjacent* cells of the RAM row (one even-indexed, one odd-indexed bit).
    A double error within the same index-parity group is still undetected,
    which is exactly the residual weakness the paper's high-flux experiment
    exposes (section 6).
    """

    scheme = ProtectionScheme.DUAL_PARITY

    def encode(self, data: int) -> int:
        return parity_even_bits(data) | (parity_odd_bits(data) << 1)

    def check(self, data: int, check: int) -> CheckResult:
        data &= 0xFFFFFFFF
        expected = self.encode(data)
        if expected == (check & 3):
            return CheckResult(ErrorKind.NONE, data, expected)
        return CheckResult(ErrorKind.DETECTED, data, expected)
