"""Recovery policies: the staged ladder and its cycle-accurate costs.

The paper's system-level FT story (sections 2 and 4.7) is that detection is
only half of availability: error-mode halts are caught by a watchdog-driven
reset, master/checker mismatches by a resynchronizing reset, and everything
cheaper -- the 4-cycle pipeline restart, a cache flush forcing a refetch --
is tried first because it costs orders of magnitude less downtime.  A
:class:`RecoveryPolicy` encodes that ladder: the ordered set of levels the
:class:`~repro.recovery.controller.RecoveryController` may climb, how much
healthy execution de-escalates it, and when to give up.

Downtime costs (device cycles)
------------------------------
* **pipeline restart** -- :data:`RESTART_CYCLES` = 4, the paper's section
  4.4 number ("the time for the complete restart operation takes 4 clock
  cycles, the same as for taking a normal trap");
* **cache flush** -- one cycle per line to clear the valid bits (the
  section 4.8 periodic-flush cost) plus the restart;
* **warm reset** -- :data:`WARM_RESET_CYCLES`: reset assertion plus the
  boot path that re-initializes on-chip state from the held memory image
  (~250 us at 100 MHz);
* **cold reboot** -- :data:`COLD_REBOOT_CYCLES`: full PROM boot with
  memory re-initialization and program reload (~20 ms at 100 MHz).

Error-mode halts are special: a halted processor cannot run any recovery
code, so the only rungs that apply are the resets, and the *detection*
latency is the watchdog timeout (``watchdog_cycles``) on top of the reset
cost -- exactly the paper's "normally wired to system reset" watchdog.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import ConfigurationError
from repro.iu import timing

#: Pipeline restart cost, cycles (section 4.4: same as a trap).
RESTART_CYCLES = timing.CYCLES_TRAP

#: Warm reset: reset line + on-chip state re-initialization (~250 us @ 100 MHz).
WARM_RESET_CYCLES = 25_000

#: Cold reboot: PROM boot + memory init + program reload (~20 ms @ 100 MHz).
COLD_REBOOT_CYCLES = 2_000_000

#: Default watchdog timeout used to catch error-mode halts, cycles.
DEFAULT_WATCHDOG_CYCLES = 20_000


class RecoveryLevel(enum.Enum):
    """One rung of the recovery ladder, cheapest first."""

    PIPELINE_RESTART = "pipeline-restart"
    CACHE_FLUSH = "cache-flush"
    WARM_RESET = "warm-reset"
    COLD_REBOOT = "cold-reboot"

    @property
    def state_loss(self) -> bool:
        """True for rungs that discard execution state (the resets)."""
        return self in (RecoveryLevel.WARM_RESET, RecoveryLevel.COLD_REBOOT)


@dataclass(frozen=True)
class RecoveryPolicy:
    """One staged-recovery configuration.

    ``ladder`` lists the enabled levels cheapest-first.  A failure recurring
    within ``stability_window`` executed instructions of the previous
    recovery escalates one rung; surviving the window de-escalates back to
    the bottom.  ``max_recoveries`` bounds the total attempts per run (a
    run that cannot be stabilized is reported, not looped forever).
    """

    name: str
    ladder: Tuple[RecoveryLevel, ...]
    #: Instructions of clean execution after which the ladder resets.
    stability_window: int = 2_000
    #: Total recovery attempts before the controller gives up.
    max_recoveries: int = 64
    #: Watchdog timeout for catching error-mode halts, device cycles.
    watchdog_cycles: int = DEFAULT_WATCHDOG_CYCLES

    def __post_init__(self) -> None:
        if not self.ladder:
            raise ConfigurationError(f"recovery policy {self.name!r} has an "
                                     "empty ladder")

    @property
    def can_reset(self) -> bool:
        """Whether the ladder contains any state-restoring rung."""
        return any(level.state_loss for level in self.ladder)


#: The built-in policies selectable as ``campaign --recovery <name>``.
POLICIES: Dict[str, Optional[RecoveryPolicy]] = {
    "none": None,
    # Restart-only: demonstrates detection without a reset path -- halts
    # and persistent parks exhaust it (the pre-recovery behaviour, with
    # bookkeeping).
    "restart": RecoveryPolicy(
        name="restart",
        ladder=(RecoveryLevel.PIPELINE_RESTART,),
        max_recoveries=8,
    ),
    # The full staged ladder (the default recovery mode).
    "ladder": RecoveryPolicy(
        name="ladder",
        ladder=(
            RecoveryLevel.PIPELINE_RESTART,
            RecoveryLevel.CACHE_FLUSH,
            RecoveryLevel.WARM_RESET,
            RecoveryLevel.COLD_REBOOT,
        ),
    ),
    # Straight to the big hammer: every failure is a full reboot (the
    # unsupervised-OBC baseline the 30 s analytic estimate assumes).
    "reboot": RecoveryPolicy(
        name="reboot",
        ladder=(RecoveryLevel.COLD_REBOOT,),
    ),
}


def resolve_policy(name: "str | RecoveryPolicy | None") -> Optional[RecoveryPolicy]:
    """Resolve a policy spec: a name from :data:`POLICIES`, an explicit
    :class:`RecoveryPolicy`, or None/"none" for no recovery."""
    if name is None or isinstance(name, RecoveryPolicy):
        return name
    try:
        return POLICIES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown recovery policy {name!r} "
            f"(choose from {sorted(POLICIES)})") from None
