"""System-level recovery: the staged ladder behind measured availability.

The paper's availability goal is met by *recovering*, not just detecting:
watchdog-driven reset for error-mode halts, resynchronization for
master/checker mismatches, and the 4-cycle pipeline restart for everything
cheaper.  This package models that supervision logic so beam campaigns run
*through* failures and measure recovery counts, downtime and MTTR.
"""

from repro.recovery.controller import (
    RESET_SKIP,
    RecoveryController,
    RecoveryEvent,
)
from repro.recovery.policy import (
    COLD_REBOOT_CYCLES,
    DEFAULT_WATCHDOG_CYCLES,
    POLICIES,
    RESTART_CYCLES,
    WARM_RESET_CYCLES,
    RecoveryLevel,
    RecoveryPolicy,
    resolve_policy,
)

__all__ = [
    "COLD_REBOOT_CYCLES",
    "DEFAULT_WATCHDOG_CYCLES",
    "POLICIES",
    "RESET_SKIP",
    "RESTART_CYCLES",
    "WARM_RESET_CYCLES",
    "RecoveryController",
    "RecoveryEvent",
    "RecoveryLevel",
    "RecoveryPolicy",
    "resolve_policy",
]
