"""The recovery controller: watches a running system, climbs the ladder.

The controller plays the role of the spacecraft's supervision logic: when
the harness (a beam campaign, a lock-step pair, a hand-driven test) reports
that the processor has failed -- parked in its unexpected-trap handler,
halted in error mode, flagged by the watchdog or by a master/checker
compare mismatch -- the controller picks the cheapest recovery rung the
policy allows for that event, applies it to the live :class:`LeonSystem`,
and charges the cycle-accurate downtime to the performance counters.

Two properties matter for the campaign statistics:

* **downtime is explicit** -- every :class:`RecoveryEvent` records the
  cycles the processor was not doing useful work, including the watchdog
  *detection* latency for halts (a dead processor is only discovered when
  the watchdog expires);
* **counters survive resets** -- warm resets and cold reboots restore the
  boot snapshot with the ``errors``/``perf`` components skipped, so a run
  that recovers five times still reports its cumulative error counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.core.system import LeonSystem
from repro.errors import RecoveryError
from repro.iu.pipeline import HaltReason
from repro.recovery.policy import (
    COLD_REBOOT_CYCLES,
    RESTART_CYCLES,
    WARM_RESET_CYCLES,
    RecoveryLevel,
    RecoveryPolicy,
)
from repro.state.snapshot import Snapshot

#: Components every reset rung preserves: the cumulative error and
#: performance counters are host-side observation state and keep counting
#: across recoveries (a run that recovers five times still reports its
#: total corrected errors).
RESET_SKIP = ("errors", "perf")

#: Event kinds the harness can report.  "halt" covers error-mode halts
#: (uncorrectable EDAC traps with ET=0 land here too); "watchdog" is a
#: halt discovered by watchdog expiry; "error-trap" is a recoverable
#: park (the program's unexpected-trap handler); "compare-error" is a
#: master/checker mismatch.
EVENT_KINDS = ("error-trap", "halt", "watchdog", "compare-error")

#: Kinds where the processor cannot run recovery code: only a reset rung
#: applies, and detection costs a watchdog timeout.
_DEAD_KINDS = ("halt", "watchdog")


@dataclass(frozen=True)
class RecoveryEvent:
    """One applied recovery."""

    kind: str
    level: RecoveryLevel
    #: Cycles of downtime this recovery cost (detection + repair).
    downtime_cycles: int
    #: Campaign instruction clock when the failure was handled.
    at_instructions: int

    @property
    def state_loss(self) -> bool:
        return self.level.state_loss


class RecoveryController:
    """Applies a :class:`RecoveryPolicy` ladder to a live system.

    The reset rungs restore from two different images:

    * **warm reset** restores ``checkpoint`` -- the state the supervision
      logic captured when the beam window opened (the PR-2 boot snapshot
      for zero-delay runs).  Memory comes back with it, so the restored
      state is fully coherent;
    * **cold reboot** restores ``boot_snapshot`` -- the load-time image:
      fresh program, full software re-initialization, the most expensive
      but most certain rung.

    Both skip the ``errors``/``perf`` components (:data:`RESET_SKIP`).
    ``on_state_loss`` runs just before a reset rung discards execution
    state -- campaigns use it to harvest the program's result-area
    counters so software-visible tallies survive the reset.
    """

    def __init__(
        self,
        system: LeonSystem,
        policy: RecoveryPolicy,
        *,
        checkpoint: Optional[Snapshot] = None,
        boot_snapshot: Optional[Snapshot] = None,
        on_state_loss: Optional[Callable[[LeonSystem], None]] = None,
    ) -> None:
        needed = {RecoveryLevel.WARM_RESET: checkpoint,
                  RecoveryLevel.COLD_REBOOT: boot_snapshot}
        for level, snapshot in needed.items():
            if level in policy.ladder and snapshot is None:
                raise RecoveryError(
                    f"policy {policy.name!r} includes {level.value} and "
                    "needs its restore snapshot")
        self.system = system
        self.policy = policy
        self.checkpoint = checkpoint
        self.boot_snapshot = boot_snapshot
        self.on_state_loss = on_state_loss
        self.events: List[RecoveryEvent] = []
        self.gave_up = False
        self._rung = 0
        self._last_recovery_at: Optional[int] = None
        config = system.config
        #: Cache-flush cost: one cycle per line to clear the valid bits
        #: (the section 4.8 flush), plus the pipeline restart.
        self._flush_cycles = (config.icache.lines + config.dcache.lines
                              + RESTART_CYCLES)

    # -- bookkeeping views -------------------------------------------------

    @property
    def counts_by_level(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self.events:
            name = event.level.value
            counts[name] = counts.get(name, 0) + 1
        return counts

    @property
    def downtime_by_level(self) -> Dict[str, int]:
        downtime: Dict[str, int] = {}
        for event in self.events:
            name = event.level.value
            downtime[name] = downtime.get(name, 0) + event.downtime_cycles
        return downtime

    @property
    def downtime_cycles(self) -> int:
        return sum(event.downtime_cycles for event in self.events)

    # -- the ladder --------------------------------------------------------

    def recover(self, kind: str, *, executed: int) -> Optional[RecoveryEvent]:
        """Handle one failure at instruction clock ``executed``.

        Returns the applied :class:`RecoveryEvent`, or None when the policy
        gives up (attempt budget exhausted, or the ladder has no rung that
        can handle this event) -- the caller should then end the run with
        the failure standing.
        """
        if kind not in EVENT_KINDS:
            raise RecoveryError(f"unknown recovery event kind {kind!r}")
        if self.gave_up:
            return None
        if len(self.events) >= self.policy.max_recoveries:
            self.gave_up = True
            return None

        ladder = self.policy.ladder
        if self._last_recovery_at is not None and \
                executed - self._last_recovery_at < self.policy.stability_window:
            # Re-failure inside the stability window: the last rung did not
            # hold, escalate.
            self._rung = min(self._rung + 1, len(ladder) - 1)
        else:
            self._rung = 0
        if kind in _DEAD_KINDS:
            # A halted processor cannot run recovery code; only a reset
            # (asserted by the watchdog output) brings it back.
            while not ladder[self._rung].state_loss:
                if self._rung + 1 >= len(ladder):
                    self.gave_up = True
                    return None
                self._rung += 1

        level = ladder[self._rung]
        downtime = 0
        if kind in _DEAD_KINDS:
            downtime += self._await_watchdog()
        downtime += self._apply(level)
        self.system.perf.cycles += downtime

        event = RecoveryEvent(kind=kind, level=level,
                              downtime_cycles=downtime,
                              at_instructions=executed)
        self.events.append(event)
        self._last_recovery_at = executed
        telemetry = self.system.telemetry
        if telemetry.enabled:
            telemetry.note("recovery", kind=kind, level=level.value,
                           downtime_cycles=downtime, instr=executed)
        return event

    # -- rung implementations ----------------------------------------------

    def _apply(self, level: RecoveryLevel) -> int:
        system = self.system
        if level is RecoveryLevel.PIPELINE_RESTART:
            system.iu.halted = HaltReason.RUNNING
            system.perf.pipeline_restarts += 1
            system.perf.restart_cycles += RESTART_CYCLES
            return RESTART_CYCLES
        if level is RecoveryLevel.CACHE_FLUSH:
            system.icache.flush()
            system.dcache.flush()
            system.perf.pipeline_restarts += 1
            system.perf.restart_cycles += RESTART_CYCLES
            return self._flush_cycles
        if level is RecoveryLevel.WARM_RESET:
            self._before_state_loss()
            system.restore(self.checkpoint, skip=RESET_SKIP)
            return WARM_RESET_CYCLES
        if level is RecoveryLevel.COLD_REBOOT:
            self._before_state_loss()
            system.restore(self.boot_snapshot, skip=RESET_SKIP)
            return COLD_REBOOT_CYCLES
        raise RecoveryError(f"unhandled recovery level {level!r}")

    def _before_state_loss(self) -> None:
        if self.on_state_loss is not None:
            self.on_state_loss(self.system)

    def _await_watchdog(self) -> int:
        """Model halt detection: wall-clock runs until the watchdog expires.

        If software never armed the watchdog the supervision logic arms it
        now at the policy timeout (the paper wires the output to reset; a
        flight system leaves it armed from boot -- campaign programs don't
        kick it, so arming at detection time keeps fault-free runs
        bit-identical to the no-recovery configuration).
        """
        timers = self.system.timers
        period = timers.prescaler_reload.value + 1
        if timers.watchdog.value == 0 and not timers.watchdog_expired:
            ticks = max(1, self.policy.watchdog_cycles // period)
            timers.apb_write(0x28, ticks)
        waited = 0
        while not timers.watchdog_expired:
            chunk = max(timers.watchdog.value, 1) * period
            self.system.apb.tick(chunk)
            waited += chunk
        self.system.perf.watchdog_resets += 1
        timers.reset_watchdog()
        return waited
