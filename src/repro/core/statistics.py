"""Error-monitoring and performance counters.

The LEON-Express test chip provides "on-chip error-monitoring counters that
increment automatically after each corrected SEU error" (section 6); the
test software reports them to the host, which is how Table 2's ITE / IDE /
DTE / DDE / RFE columns are produced.  :class:`ErrorCounters` is that
hardware block's state; the APB ``errmon`` peripheral exposes it to software.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass
class ErrorCounters:
    """Counters of *detected-and-corrected* SEU errors, by RAM type.

    Field names follow the paper: ITE = instruction cache tag error, IDE =
    instruction cache data error, DTE = data cache tag error, DDE = data
    cache data error, RFE = register file error.
    """

    ite: int = 0
    ide: int = 0
    dte: int = 0
    dde: int = 0
    rfe: int = 0
    #: EDAC corrections in external memory (not part of Table 2 -- the beam
    #: only strikes the processor die -- but counted for the ablations).
    edac_corrected: int = 0
    #: Uncorrectable events that reached software as error traps.
    register_error_traps: int = 0
    memory_error_traps: int = 0

    @property
    def total(self) -> int:
        """Total corrected on-chip RAM errors (the paper's 'Total' column)."""
        return self.ite + self.ide + self.dte + self.dde + self.rfe

    def as_dict(self) -> Dict[str, int]:
        return {
            "ITE": self.ite,
            "IDE": self.ide,
            "DTE": self.dte,
            "DDE": self.dde,
            "RFE": self.rfe,
            "Total": self.total,
        }

    def reset(self) -> None:
        self.ite = self.ide = self.dte = self.dde = self.rfe = 0
        self.edac_corrected = 0
        self.register_error_traps = self.memory_error_traps = 0

    def clear_monitor(self) -> None:
        """Clear the *monitor-visible* counters only (an errmon write).

        The trap tallies are host-side bookkeeping of uncorrectable events,
        not error-monitor registers; software clearing the monitor must not
        erase them, or a resumed campaign under-reports its failures.
        """
        self.ite = self.ide = self.dte = self.dde = self.rfe = 0
        self.edac_corrected = 0

    def capture(self) -> dict:
        return dict(vars(self))

    def restore(self, state: dict) -> None:
        for name in vars(self):
            setattr(self, name, int(state[name]))


@dataclass
class PerfCounters:
    """Cycle/instruction accounting for the performance experiments.

    ``restore`` tolerates snapshots captured before a counter existed
    (missing keys restore as zero) so saved state files stay loadable as
    counters are added."""

    cycles: int = 0
    instructions: int = 0
    icache_hits: int = 0
    icache_misses: int = 0
    dcache_hits: int = 0
    dcache_misses: int = 0
    traps: int = 0
    pipeline_restarts: int = 0
    restart_cycles: int = 0
    stores: int = 0
    loads: int = 0
    #: System resets driven by the watchdog output (recovery bookkeeping).
    watchdog_resets: int = 0

    @property
    def ipc(self) -> float:
        """Instructions per cycle (the paper targets ~1 MIPS/MHz peak)."""
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def icache_hit_rate(self) -> float:
        accesses = self.icache_hits + self.icache_misses
        return self.icache_hits / accesses if accesses else 0.0

    @property
    def dcache_hit_rate(self) -> float:
        accesses = self.dcache_hits + self.dcache_misses
        return self.dcache_hits / accesses if accesses else 0.0

    def reset(self) -> None:
        for name in vars(self):
            setattr(self, name, 0)

    def capture(self) -> dict:
        return dict(vars(self))

    def restore(self, state: dict) -> None:
        for name in vars(self):
            setattr(self, name, int(state.get(name, 0)))
