"""The LEON configuration package (paper section 5.1).

The VHDL model is "extensively configurable through a configuration package:
options such as cache size and organization, multiplier implementation,
target technology, speed/area trade-off and fault-tolerance scheme can be set
by editing constants".  :class:`LeonConfig` is the Python mirror of that
package; two presets reproduce the two synthesis configurations compared in
Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ConfigurationError
from repro.ft.protection import ProtectionScheme


def _is_power_of_two(value: int) -> bool:
    return value > 0 and value & (value - 1) == 0


@dataclass(frozen=True)
class CacheConfig:
    """One cache (instruction or data).

    LEON-1 caches are direct-mapped with one or two parity bits per tag and
    data word and per-word valid bits (sub-blocking, section 4.6).
    """

    size_bytes: int = 8192
    line_bytes: int = 16
    parity: ProtectionScheme = ProtectionScheme.NONE
    subblocking: bool = True

    def __post_init__(self) -> None:
        if not _is_power_of_two(self.size_bytes):
            raise ConfigurationError(f"cache size {self.size_bytes} not a power of two")
        if self.line_bytes not in (8, 16, 32):
            raise ConfigurationError(f"cache line {self.line_bytes} must be 8, 16 or 32")
        if self.size_bytes < self.line_bytes:
            raise ConfigurationError("cache smaller than one line")
        if self.parity is ProtectionScheme.BCH:
            raise ConfigurationError(
                "cache RAMs use parity, not BCH (they are in the critical path)"
            )

    @property
    def lines(self) -> int:
        return self.size_bytes // self.line_bytes

    @property
    def words_per_line(self) -> int:
        return self.line_bytes // 4


@dataclass(frozen=True)
class MemoryConfig:
    """External memory controller layout (PROM / SRAM / memory-mapped I/O)."""

    prom_base: int = 0x00000000
    prom_bytes: int = 1 << 20
    sram_base: int = 0x40000000
    sram_bytes: int = 4 << 20
    io_base: int = 0x20000000
    io_bytes: int = 1 << 20
    prom_waitstates: int = 3
    sram_waitstates: int = 1
    edac: bool = False  # on-chip EDAC over PROM and SRAM (section 4.6)

    def __post_init__(self) -> None:
        for name in ("prom_bytes", "sram_bytes", "io_bytes"):
            if getattr(self, name) % 4:
                raise ConfigurationError(f"{name} must be a multiple of 4")
        if self.prom_waitstates < 0 or self.sram_waitstates < 0:
            raise ConfigurationError("waitstates must be non-negative")


@dataclass(frozen=True)
class FtConfig:
    """Which fault-tolerance features are enabled (paper section 4).

    ``regfile_duplicated`` selects the two-parallel-two-port-RAM register
    file implementation, where parity not only detects but also *corrects*
    (copy from the error-free RAM, section 4.4); it requires a parity scheme
    on the register file.
    """

    tmr_flipflops: bool = False
    tmr_separate_clock_trees: bool = True
    regfile_protection: ProtectionScheme = ProtectionScheme.NONE
    regfile_duplicated: bool = False
    master_checker: bool = False

    def __post_init__(self) -> None:
        if self.regfile_duplicated and self.regfile_protection not in (
            ProtectionScheme.PARITY,
            ProtectionScheme.DUAL_PARITY,
        ):
            raise ConfigurationError(
                "the duplicated register file corrects through parity; "
                "use PARITY or DUAL_PARITY (BCH corrects by itself)"
            )


@dataclass(frozen=True)
class LeonConfig:
    """Complete LEON configuration.

    Use :meth:`standard` and :meth:`fault_tolerant` for the two
    configurations compared in the paper, and :func:`dataclasses.replace`
    (re-exported as :meth:`with_changes`) for variants.
    """

    name: str = "leon"
    nwindows: int = 8
    icache: CacheConfig = field(default_factory=CacheConfig)
    dcache: CacheConfig = field(default_factory=CacheConfig)
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    ft: FtConfig = field(default_factory=FtConfig)
    has_fpu: bool = True
    has_muldiv: bool = True
    frequency_mhz: float = 100.0

    def __post_init__(self) -> None:
        if not 2 <= self.nwindows <= 32:
            raise ConfigurationError(f"nwindows {self.nwindows} out of SPARC range 2..32")
        if self.frequency_mhz <= 0:
            raise ConfigurationError("frequency must be positive")

    @property
    def regfile_words(self) -> int:
        """Register-file size: nwindows x 16 + 8 globals (136 for 8 windows,
        matching Table 1's '136x32')."""
        return self.nwindows * 16 + 8

    def with_changes(self, **changes) -> "LeonConfig":
        return replace(self, **changes)

    @classmethod
    def standard(cls, **overrides) -> "LeonConfig":
        """The non-FT synthesis configuration of Table 1 (no FPU)."""
        defaults = dict(
            name="leon-standard",
            has_fpu=False,
            icache=CacheConfig(size_bytes=8192, parity=ProtectionScheme.NONE),
            dcache=CacheConfig(size_bytes=8192, parity=ProtectionScheme.NONE),
            memory=MemoryConfig(edac=False),
            ft=FtConfig(),
        )
        defaults.update(overrides)
        return cls(**defaults)

    @classmethod
    def fault_tolerant(cls, **overrides) -> "LeonConfig":
        """The FT configuration of Table 1: TMR on all flip-flops, two parity
        bits on the cache RAMs, 7-bit BCH on the register file, EDAC on
        external memory."""
        defaults = dict(
            name="leon-ft",
            has_fpu=False,
            icache=CacheConfig(size_bytes=8192, parity=ProtectionScheme.DUAL_PARITY),
            dcache=CacheConfig(size_bytes=8192, parity=ProtectionScheme.DUAL_PARITY),
            memory=MemoryConfig(edac=True),
            ft=FtConfig(
                tmr_flipflops=True,
                regfile_protection=ProtectionScheme.BCH,
            ),
        )
        defaults.update(overrides)
        return cls(**defaults)

    @classmethod
    def leon_express(cls, **overrides) -> "LeonConfig":
        """The LEON-Express flight-test device (section 5.3): the FT
        configuration that went under the beam at Louvain, with an FPU so the
        PARANOIA test program has something to exercise."""
        config = cls.fault_tolerant(name="leon-express", has_fpu=True)
        return config.with_changes(**overrides) if overrides else config
