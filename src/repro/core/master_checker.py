"""Master/checker operation (paper section 4.7).

Two LEON processors run the same program in lock-step; the checker drives no
outputs but compares, every clock, the values it *would* have driven against
the master's.  A discrepancy asserts the compare-error output.

The paper's SEU test campaign used exactly this: the master under the beam,
the checker shielded, and the compare-error line as the error-detection
signal.  Note the documented limitation: an internal correction (register
file or cache) skews the master's timing, so a *corrected* error also raises
a compare error; the test harness then verifies the checksum and the error
counters to classify the event.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.config import LeonConfig
from repro.core.system import LeonSystem
from repro.iu.pipeline import StepResult
from repro.recovery.policy import WARM_RESET_CYCLES
from repro.telemetry.bus import NULL_TELEMETRY


@dataclass(frozen=True)
class CompareError:
    """One master/checker discrepancy."""

    step: int
    field: str
    master_value: object
    checker_value: object


@dataclass(frozen=True)
class LockStepReport:
    """Outcome of :meth:`MasterChecker.run_with_recovery`."""

    steps: int
    compare_errors: int
    resyncs: int
    failovers: int
    #: Downtime charged for the resynchronizing resets, device cycles.
    downtime_cycles: int
    #: True when the pair reached the step budget; False when both devices
    #: were dead and no fail-over could help.
    completed: bool


def _signature(result: StepResult) -> Tuple:
    """What the checker compares each step: program counter, event class,
    cycle count (timing skew!) and every external write."""
    return (result.pc, result.event, result.cycles, tuple(result.writes))


class MasterChecker:
    """A lock-stepped master/checker pair of LEON systems."""

    def __init__(self, config: Optional[LeonConfig] = None, *,
                 telemetry=None) -> None:
        self.config = config or LeonConfig.fault_tolerant()
        self.telemetry = telemetry if telemetry is not None \
            else NULL_TELEMETRY
        # The master is the traced device; the checker's own detections
        # would double-count the shared counters in a folded trace.
        self.master = LeonSystem(self.config, telemetry=self.telemetry)  # state: wiring -- full system with its own snapshot()
        self.checker = LeonSystem(self.config)  # state: wiring -- full system with its own snapshot()
        self.compare_errors: List[CompareError] = []  # state: diag -- harness observation log, not device state
        self._steps = 0  # state: diag -- harness step tally
        self.resyncs = 0  # state: diag -- harness recovery tally
        self.failovers = 0  # state: diag -- harness recovery tally

    def load_program(self, program) -> None:
        self.master.load_program(program)
        self.checker.load_program(program)

    def step(self) -> Tuple[StepResult, Optional[CompareError]]:
        """Step both devices one instruction and compare outputs."""
        master_result = self.master.step()
        checker_result = self.checker.step()
        self._steps += 1
        error = self._compare(master_result, checker_result)
        if error is not None:
            self.compare_errors.append(error)
            if self.telemetry.enabled:
                self.telemetry.note("compare", field=error.field,
                                    step=error.step,
                                    mech="lockstep-compare")
        return master_result, error

    def _compare(self, master: StepResult, checker: StepResult) -> Optional[CompareError]:
        master_sig = _signature(master)
        checker_sig = _signature(checker)
        if master_sig == checker_sig:
            return None
        for name, m_value, c_value in zip(
            ("pc", "event", "cycles", "writes"), master_sig, checker_sig
        ):
            if m_value != c_value:
                return CompareError(self._steps, name, m_value, c_value)
        return None  # pragma: no cover

    def run(self, max_steps: int, *, stop_on_compare_error: bool = False):
        """Run the pair; returns (steps run, list of compare errors)."""
        errors_before = len(self.compare_errors)
        for step in range(max_steps):
            _result, error = self.step()
            if error is not None and stop_on_compare_error:
                return step + 1, self.compare_errors[errors_before:]
            if self.master.halted.value != "running":
                return step + 1, self.compare_errors[errors_before:]
        return max_steps, self.compare_errors[errors_before:]

    def resynchronize(self, *, from_master: bool = True) -> None:
        """Bring the pair back into lock-step after a skew (the paper: "a
        reset is necessary to synchronize the two processors").

        ``from_master=True`` (default) restores the checker from the
        master's snapshot -- the post-reset state of both devices without
        re-running boot, so lock-step execution continues from where the
        master is.  ``from_master=False`` is the legacy behaviour: a fresh
        blank checker the harness must reload itself."""
        if from_master:
            self.checker.restore(self.master.snapshot())
        else:
            self.checker = LeonSystem(self.config)
        self.compare_errors.clear()
        self._steps = 0
        self.resyncs += 1
        if self.telemetry.enabled:
            self.telemetry.note("resync", from_master=from_master)

    def fail_over(self) -> None:
        """Promote the healthy checker to master and resynchronize.

        The arrangement is symmetric: when the *master* is the failed
        device (halted in error mode under the beam), the supervision
        logic swaps which device drives the outputs, then restores the
        failed one from the new master so lock-step resumes."""
        self.master, self.checker = self.checker, self.master
        self.failovers += 1
        if self.telemetry.enabled:
            self.telemetry.note("fail-over")
        self.resynchronize()

    def run_with_recovery(
        self,
        max_steps: int,
        *,
        resync_cycles: int = WARM_RESET_CYCLES,
    ) -> LockStepReport:
        """Run the pair end to end, recovering from compare errors.

        The fail-over policy: every compare error is answered with a
        resynchronizing reset (charged ``resync_cycles`` of downtime); if
        the master itself is dead (error-mode halt), the healthy checker
        is promoted first.  The run only stops early when *both* devices
        are dead -- the double-failure the scheme cannot survive.
        """
        steps_done = 0
        compare_count = 0
        resyncs_before = self.resyncs
        failovers_before = self.failovers
        downtime = 0

        def report(completed: bool) -> LockStepReport:
            return LockStepReport(
                steps=steps_done,
                compare_errors=compare_count,
                resyncs=self.resyncs - resyncs_before,
                failovers=self.failovers - failovers_before,
                downtime_cycles=downtime,
                completed=completed,
            )

        while steps_done < max_steps:
            ran, errors = self.run(max_steps - steps_done,
                                   stop_on_compare_error=True)
            steps_done += ran
            compare_count += len(errors)
            master_dead = self.master.halted.value != "running"
            if not errors and not master_dead:
                break  # reached the budget in lock-step
            if master_dead:
                if self.checker.halted.value != "running":
                    return report(completed=False)
                self.fail_over()
            else:
                self.resynchronize()
            downtime += resync_cycles
        return report(completed=True)
