"""Master/checker operation (paper section 4.7).

Two LEON processors run the same program in lock-step; the checker drives no
outputs but compares, every clock, the values it *would* have driven against
the master's.  A discrepancy asserts the compare-error output.

The paper's SEU test campaign used exactly this: the master under the beam,
the checker shielded, and the compare-error line as the error-detection
signal.  Note the documented limitation: an internal correction (register
file or cache) skews the master's timing, so a *corrected* error also raises
a compare error; the test harness then verifies the checksum and the error
counters to classify the event.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.config import LeonConfig
from repro.core.system import LeonSystem
from repro.iu.pipeline import StepResult


@dataclass(frozen=True)
class CompareError:
    """One master/checker discrepancy."""

    step: int
    field: str
    master_value: object
    checker_value: object


def _signature(result: StepResult) -> Tuple:
    """What the checker compares each step: program counter, event class,
    cycle count (timing skew!) and every external write."""
    return (result.pc, result.event, result.cycles, tuple(result.writes))


class MasterChecker:
    """A lock-stepped master/checker pair of LEON systems."""

    def __init__(self, config: Optional[LeonConfig] = None) -> None:
        self.config = config or LeonConfig.fault_tolerant()
        self.master = LeonSystem(self.config)
        self.checker = LeonSystem(self.config)
        self.compare_errors: List[CompareError] = []
        self._steps = 0

    def load_program(self, program) -> None:
        self.master.load_program(program)
        self.checker.load_program(program)

    def step(self) -> Tuple[StepResult, Optional[CompareError]]:
        """Step both devices one instruction and compare outputs."""
        master_result = self.master.step()
        checker_result = self.checker.step()
        self._steps += 1
        error = self._compare(master_result, checker_result)
        if error is not None:
            self.compare_errors.append(error)
        return master_result, error

    def _compare(self, master: StepResult, checker: StepResult) -> Optional[CompareError]:
        master_sig = _signature(master)
        checker_sig = _signature(checker)
        if master_sig == checker_sig:
            return None
        for name, m_value, c_value in zip(
            ("pc", "event", "cycles", "writes"), master_sig, checker_sig
        ):
            if m_value != c_value:
                return CompareError(self._steps, name, m_value, c_value)
        return None  # pragma: no cover

    def run(self, max_steps: int, *, stop_on_compare_error: bool = False):
        """Run the pair; returns (steps run, list of compare errors)."""
        errors_before = len(self.compare_errors)
        for step in range(max_steps):
            _result, error = self.step()
            if error is not None and stop_on_compare_error:
                return step + 1, self.compare_errors[errors_before:]
            if self.master.halted.value != "running":
                return step + 1, self.compare_errors[errors_before:]
        return max_steps, self.compare_errors[errors_before:]

    def resynchronize(self) -> None:
        """After a correction-induced skew the pair must be reset to get back
        in step (the paper: "a reset is necessary to synchronize the two
        processors").  We rebuild the checker from the master's memory image
        equivalent -- in hardware this is a full reset of both devices; the
        harness reloads and restarts instead."""
        self.checker = LeonSystem(self.config)
        self.compare_errors.clear()
        self._steps = 0
