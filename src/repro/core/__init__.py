"""Top-level LEON system: configuration, the assembled processor, statistics.

`repro.core` is the paper's primary contribution layer: it wires the SPARC V8
integer unit, FPU, caches, AMBA buses, memory controller and peripherals into
a complete LEON processor, in either the standard or the fault-tolerant
configuration, and provides the master/checker pairing of section 4.7.
"""

from repro.core.config import CacheConfig, FtConfig, LeonConfig, MemoryConfig
from repro.core.master_checker import CompareError, MasterChecker
from repro.core.statistics import ErrorCounters, PerfCounters
from repro.core.system import LeonSystem

__all__ = [
    "CacheConfig",
    "CompareError",
    "ErrorCounters",
    "FtConfig",
    "LeonConfig",
    "MasterChecker",
    "MemoryConfig",
    "PerfCounters",
    "LeonSystem",
]
