"""The assembled LEON system (paper figure 1).

``LeonSystem`` builds and wires every block of the block diagram: the SPARC
V8 integer unit with its register file, the FPU, both caches, the AMBA AHB
bus with the memory controller, and the APB bridge with timers, UARTs,
interrupt controller, I/O port and the FT error monitor.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional

from repro.amba.ahb import AhbBus, TransferSize
from repro.amba.apb import ApbBridge
from repro.cache.dcache import DataCache
from repro.cache.icache import InstructionCache
from repro.core.config import LeonConfig
from repro.core.statistics import ErrorCounters, PerfCounters
from repro.errors import BusError, SimulationError, StateError
from repro.fpu.fpu import Fpu
from repro.ft.protection import ProtectionScheme
from repro.ft.tmr import FlipFlopBank
from repro.iu.pipeline import HaltReason, IntegerUnit, StepEvent, StepResult
from repro.iu.psr import SpecialRegisters
from repro.iu.regfile import RegisterFile
from repro.jit import JitEngine, jit_default_enabled
from repro.mem.memctrl import MemoryController
from repro.peripherals import (
    IRQ_TIMER1,
    IRQ_TIMER2,
    IRQ_UART1,
    IRQ_UART2,
)
from repro.peripherals.dma import DmaEngine
from repro.peripherals.errmon import ErrorMonitor
from repro.peripherals.ioport import IoPort
from repro.peripherals.irqctrl import InterruptController
from repro.peripherals.sysregs import SystemRegisters
from repro.peripherals.timer import TimerUnit
from repro.peripherals.uart import Uart
from repro.sparc.asm import Program
from repro.state.snapshot import Snapshot
from repro.telemetry.bus import NULL_TELEMETRY, Telemetry

#: Base address of the APB bridge (LEON-2 register map).
APB_BASE = 0x80000000


@dataclass
class RunResult:
    """Outcome of :meth:`LeonSystem.run`."""

    instructions: int
    cycles: int
    steps: int
    halted: HaltReason
    stop_reason: str
    pc: int
    #: Host wall-clock time the run took, seconds.
    wall_seconds: float = 0.0

    @property
    def instructions_per_second(self) -> float:
        """Host throughput of the run (simulated instructions / wall second)."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.instructions / self.wall_seconds


class LeonSystem:
    """A complete LEON processor plus its memory system and peripherals."""

    def __init__(self, config: Optional[LeonConfig] = None, *,
                 telemetry: Optional[Telemetry] = None,
                 jit: Optional[bool] = None) -> None:
        self.config = config or LeonConfig.fault_tolerant()
        config = self.config
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY

        self.errors = ErrorCounters()
        self.perf = PerfCounters()
        self.ffbank = FlipFlopBank(
            tmr=config.ft.tmr_flipflops,
            separate_clock_trees=config.ft.tmr_separate_clock_trees,
        )

        # -- AHB: memory controller ----------------------------------------------
        self.bus = AhbBus()
        self.cpu_master = self.bus.add_master("cpu", priority=1)
        self.memctrl = MemoryController(config.memory)
        for bank in self.memctrl.banks():
            self.bus.attach(bank)

        # -- APB: peripherals ------------------------------------------------------
        self.apb = ApbBridge(APB_BASE)  # state: wiring -- bridge topology; peripheral state captured per-slave
        self.bus.attach(self.apb)
        self.irqctrl = InterruptController(ffbank=self.ffbank)  # state: wiring -- register state lives in the ffbank
        raise_irq = self.irqctrl.raise_interrupt
        self.sysregs = SystemRegisters(config, ffbank=self.ffbank)
        self.timers = TimerUnit(irq_levels=(IRQ_TIMER1, IRQ_TIMER2),
                                raise_irq=raise_irq, ffbank=self.ffbank)
        self.uart1 = Uart("uart1", 0x70, irq_level=IRQ_UART1,
                          raise_irq=raise_irq, ffbank=self.ffbank)
        self.uart2 = Uart("uart2", 0x80, irq_level=IRQ_UART2,
                          raise_irq=raise_irq, ffbank=self.ffbank)
        self.ioport = IoPort(raise_irq=raise_irq, ffbank=self.ffbank)
        self.errmon = ErrorMonitor(self.errors)  # state: wiring -- view over self.errors, captured as 'errors'
        self.dma = DmaEngine(self.bus, ffbank=self.ffbank)
        for slave in (self.sysregs, self.timers, self.uart1, self.uart2,
                      self.irqctrl, self.ioport, self.errmon, self.dma):
            self.apb.attach(slave)

        # -- caches --------------------------------------------------------------------
        self.icache = InstructionCache(config.icache, self.bus, self.cpu_master,
                                       self.errors, self.perf, self.telemetry)
        self.dcache = DataCache(config.dcache, self.bus, self.cpu_master,
                                self.errors, self.perf, self.telemetry)
        self.dcache.double_store_delay = (
            config.ft.regfile_protection is not ProtectionScheme.NONE
        )
        self.sysregs.icache = self.icache
        self.sysregs.dcache = self.dcache
        self.sysregs.write_protector = self.memctrl.write_protector

        # -- processor -------------------------------------------------------------------
        self.regfile = RegisterFile(
            config.nwindows,
            config.ft.regfile_protection,
            duplicated=config.ft.regfile_duplicated,
        )
        self.special = SpecialRegisters(self.ffbank, config.nwindows,  # state: wiring -- register state lives in the ffbank
                                        reset_pc=config.memory.prom_base)
        if config.has_fpu:
            def _count_fp_correction() -> None:
                # The f-registers live in the register-file RAM: their
                # corrections increment the same RFE counter (section 4.4).
                self.errors.rfe += 1
                self.perf.pipeline_restarts += 1
                telemetry = self.telemetry
                if telemetry.enabled:
                    instr_count = self.perf.instructions
                    mech = config.ft.regfile_protection.value
                    telemetry.detect("fpregs", None, mech=mech,
                                     kind="correctable", counter="RFE",
                                     instr=instr_count)
                    telemetry.resolve("fpregs", None,
                                      action="correct-writeback",
                                      instr=instr_count)

            self.fpu = Fpu(self.ffbank,
                           protection=config.ft.regfile_protection,
                           on_corrected=_count_fp_correction)
        else:
            self.fpu = None
        self.iu = IntegerUnit(
            config=config,
            regfile=self.regfile,
            special=self.special,
            icache=self.icache,
            dcache=self.dcache,
            fpu=self.fpu,
            ffbank=self.ffbank,
            errors=self.errors,
            perf=self.perf,
            is_cacheable=self.memctrl.is_cacheable,
            irqctrl=self.irqctrl,
            telemetry=self.telemetry,
        )
        #: Set when an injection has touched the flip-flop bank since the
        #: last step, to trigger a TMR scrub (hardware scrubs every edge).
        self._ffbank_dirty = False
        #: Whether the watchdog output is wired to the reset line (the
        #: paper's "normally wired to system reset").  Harnesses that only
        #: want to observe the latch can unwire it.
        self.watchdog_reset_enabled = True  # state: config -- harness wiring choice, constant per run
        #: Trace-JIT engine, or None when disabled (``jit=False`` or
        #: ``REPRO_JIT=0``).  Pure acceleration state -- never part of a
        #: snapshot, invalidated on restore/reset/reload.
        if jit is None:
            jit = jit_default_enabled()
        self.jit = JitEngine(self) if jit else None

    # -- state capture ---------------------------------------------------------------

    def snapshot(self) -> Snapshot:
        """Capture the complete device state as a :class:`Snapshot`.

        Component order is fixed so identical states produce identical
        serialized bytes.  Everything that can influence future execution is
        included; pure observation state rides along under ``"diag"`` keys
        (or in the ``errors``/``perf`` components) where architectural
        digests ignore it.
        """
        components = {
            "system": {"ffbank_dirty": self._ffbank_dirty},
            "ffbank": self.ffbank.capture(),
            "regfile": self.regfile.capture(),
            "fpu": self.fpu.capture() if self.fpu is not None else None,
            "iu": self.iu.capture(),
            "icache": self.icache.capture(),
            "dcache": self.dcache.capture(),
            "memory": self.memctrl.capture(),
            "timers": self.timers.capture(),
            "uart1": self.uart1.capture(),
            "uart2": self.uart2.capture(),
            "ioport": self.ioport.capture(),
            "dma": self.dma.capture(),
            "sysregs": self.sysregs.capture(),
            "bus": self.bus.capture(),
            "errors": self.errors.capture(),
            "perf": self.perf.capture(),
        }
        return Snapshot(repr(self.config), components)

    def restore(self, snapshot: Snapshot, *, skip: "tuple" = ()) -> None:
        """Restore a snapshot captured from an identically-configured system.

        ``skip`` names components to leave untouched -- the recovery
        subsystem uses it for warm resets (``skip=("memory", "errors",
        "perf")``: memory contents survive the reset, and the cumulative
        error/performance counters keep counting across it).
        """
        if snapshot.config_key != repr(self.config):
            raise StateError(
                "snapshot was captured from a different device configuration")
        components = snapshot.components
        skipped = frozenset(skip)
        unknown = skipped - set(components)
        if unknown:
            raise StateError(f"unknown snapshot components: {sorted(unknown)}")
        if "system" not in skipped:
            self._ffbank_dirty = bool(components["system"]["ffbank_dirty"])
        restorers = (
            ("ffbank", self.ffbank),
            ("regfile", self.regfile),
            ("fpu", self.fpu),
            ("iu", self.iu),
            ("icache", self.icache),
            ("dcache", self.dcache),
            ("memory", self.memctrl),
            ("timers", self.timers),
            ("uart1", self.uart1),
            ("uart2", self.uart2),
            ("ioport", self.ioport),
            ("dma", self.dma),
            ("sysregs", self.sysregs),
            ("bus", self.bus),
            ("errors", self.errors),
            ("perf", self.perf),
        )
        for name, component in restorers:
            if component is None or name in skipped:
                continue
            component.restore(components[name])
        if self.jit is not None:
            self.jit.invalidate()

    def state_digest(self) -> str:
        """Hex digest of the *architectural* state (counters excluded).

        Two systems with equal digests execute identical futures; their
        error/performance counters may differ (see :mod:`repro.state`).
        """
        return self.snapshot().digest(architectural=True)

    # -- program loading -------------------------------------------------------------

    def load_program(self, program: Program, *, set_pc: bool = True) -> None:
        """Load an assembled program image into PROM/SRAM and point the
        processor at its base address."""
        self.write_image(program.base, program.to_bytes())
        if set_pc:
            self.special.pc = program.base
            self.special.npc = program.base + 4
        if self.jit is not None:
            self.jit.invalidate()

    def write_image(self, base: int, image: bytes) -> None:
        for memory, bank in ((self.memctrl.prom_memory, self.memctrl.prom),
                             (self.memctrl.sram_memory, self.memctrl.sram),
                             (self.memctrl.io_memory, self.memctrl.io)):
            if bank.covers(base):
                if not bank.covers(base + max(len(image) - 1, 0)):
                    raise SimulationError("image does not fit in one memory bank")
                memory.load_image(base - bank.base, image)
                return
        raise SimulationError(f"address {base:#x} is not in PROM, SRAM or I/O space")

    # -- direct memory access for tests/harnesses -----------------------------------------

    def read_word(self, address: int) -> int:
        result = self.bus.read(address, TransferSize.WORD)
        if result.error:
            raise BusError(address)
        return result.data

    def write_word(self, address: int, value: int) -> None:
        result = self.bus.write(address, value, TransferSize.WORD)
        if result.error:
            raise BusError(address)

    # -- execution ---------------------------------------------------------------------------

    def reset(self, *, watchdog: bool = False) -> None:
        """Assert the system reset line.

        The integer unit leaves error mode and restarts at the reset
        vector, the caches flush (valid bits clear on reset), and the
        watchdog disarms until software re-arms it.  RAM contents --
        register file, memory -- survive; boot code re-initializes them.
        """
        self.iu.reset()
        self.icache.flush()
        self.dcache.flush()
        self.timers.reset_watchdog()
        if self.jit is not None:
            self.jit.invalidate()
        if watchdog:
            self.perf.watchdog_resets += 1
            if self.telemetry.enabled:
                self.telemetry.note("watchdog-reset",
                                    instr=self.perf.instructions)

    def step(self) -> StepResult:
        """Execute one instruction; advance peripherals by its cycle cost."""
        if self._ffbank_dirty:
            self.ffbank.scrub()
            self._ffbank_dirty = False
            if self.telemetry.enabled and self.ffbank.tmr:
                # With TMR the scrub votes every struck lane back clean;
                # without it the recirculation clears nothing, so the
                # upsets stay open (closed latent at end of run).
                self.telemetry.tmr_scrub(instr=self.perf.instructions)
        if self.sysregs.power_down_requested:
            self.sysregs.power_down_requested = False
            self.iu.power_down = True
        result = self.iu.step()
        if result.cycles:
            self.apb.tick(result.cycles)
            if self.timers.watchdog_expired and self.watchdog_reset_enabled:
                # The watchdog output is wired to reset (section 2): a hung
                # or error-mode processor reboots instead of staying dead.
                self.reset(watchdog=True)
        return result

    def mark_ffbank_dirty(self) -> None:
        """Called by the fault injector after striking a flip-flop lane."""
        self._ffbank_dirty = True

    def run(
        self,
        max_instructions: int = 1_000_000,
        *,
        stop_pc: Optional[int] = None,
        stop_when: Optional[Callable[[StepResult], bool]] = None,
        max_idle_steps: int = 100_000,
    ) -> RunResult:
        """Run until a stop condition.

        Stops on: the processor halting (error mode), ``stop_pc`` being
        reached, ``stop_when`` returning True, the instruction budget, or
        a power-down period exceeding ``max_idle_steps``.

        When no ``stop_when`` predicate is given the loop takes
        :meth:`run_fast` -- the cheap-PC-compare path campaigns use for the
        fault-free stretches between scheduled strikes.
        """
        if stop_when is None:
            return self.run_fast(max_instructions, stop_pc=stop_pc,
                                 max_idle_steps=max_idle_steps)
        started = time.perf_counter()
        instructions = 0
        steps = 0
        idle = 0
        stop_reason = "budget"
        while instructions < max_instructions:
            if stop_pc is not None and self.special.pc == stop_pc \
                    and self.iu.halted is HaltReason.RUNNING:
                stop_reason = "stop-pc"
                break
            result = self.step()
            steps += 1
            if result.event is StepEvent.OK:
                instructions += 1
            if result.event is StepEvent.HALTED:
                stop_reason = "halted"
                break
            if result.event is StepEvent.IDLE:
                idle += 1
                if idle > max_idle_steps:
                    stop_reason = "idle"
                    break
            else:
                idle = 0
            if stop_when(result):
                stop_reason = "predicate"
                break
        return RunResult(
            instructions=instructions,
            cycles=self.perf.cycles,
            steps=steps,
            halted=self.iu.halted,
            stop_reason=stop_reason,
            pc=self.special.pc,
            wall_seconds=time.perf_counter() - started,
        )

    def run_fast(
        self,
        max_instructions: int = 1_000_000,
        *,
        stop_pc: Optional[int] = None,
        max_idle_steps: int = 100_000,
    ) -> RunResult:
        """The tight run loop: no per-step predicate, only a PC compare.

        Semantically identical to :meth:`run` with ``stop_when=None`` --
        campaigns drive their fault-free stretches through here so the
        per-step cost is a handful of attribute reads, not a Python
        callback.
        """
        started = time.perf_counter()
        instructions = 0
        steps = 0
        idle = 0
        stop_reason = "budget"
        step = self.step
        special = self.special
        iu = self.iu
        ok = StepEvent.OK
        halted_event = StepEvent.HALTED
        idle_event = StepEvent.IDLE
        running = HaltReason.RUNNING
        jit = self.jit
        try_burst = jit.try_burst if jit is not None else None
        while instructions < max_instructions:
            if stop_pc is not None and special.pc == stop_pc \
                    and iu.halted is running:
                stop_reason = "stop-pc"
                break
            if try_burst is not None:
                burst = try_burst(max_instructions - instructions, stop_pc)
                if burst is not None:
                    instructions += burst[0]
                    steps += burst[1]
                    idle = 0
                    continue
            result = step()
            steps += 1
            event = result.event
            if event is ok:
                instructions += 1
                idle = 0
            elif event is halted_event:
                stop_reason = "halted"
                break
            elif event is idle_event:
                idle += 1
                if idle > max_idle_steps:
                    stop_reason = "idle"
                    break
            else:
                idle = 0
        return RunResult(
            instructions=instructions,
            cycles=self.perf.cycles,
            steps=steps,
            halted=iu.halted,
            stop_reason=stop_reason,
            pc=special.pc,
            wall_seconds=time.perf_counter() - started,
        )

    # -- convenience -----------------------------------------------------------------------------

    @property
    def halted(self) -> HaltReason:
        return self.iu.halted

    def uart_output(self) -> bytes:
        return self.uart1.transcript()
