"""The telemetry event bus: SEU lifecycle tracing for the fault path.

Every event is a plain dict with an ``"ev"`` discriminator, designed to
serialise straight to JSONL.  The taxonomy (see DESIGN.md):

``strike``
    A particle hit: upset id, beam time, target, flat bit, LET, MBU flag,
    instruction count.  Emitted by the campaign as it applies the beam.
``detect``
    A protection layer noticed a corrupted word: site (target name),
    word index, mechanism (parity/dual-parity/bch/edac/tmr-vote/
    lockstep-compare), kind (correctable/detected), which Table-2 style
    counter incremented, instruction count.
``resolve``
    The corruption was repaired or converted to a trap: site, word,
    action (refetch/invalidate/pipeline-restart/trap/tmr-scrub/...).
``close``
    End-of-run classification for upsets never detected: state
    ``latent`` (still resident in a suspect word) or ``masked``
    (overwritten before any access).
``recovery`` / ``watchdog-reset`` / ``compare`` / ``resync`` /
``fail-over``
    Recovery-ladder rungs, watchdog fires and lock-step activity.
``run-start`` / ``span`` / ``run-end``
    Per-run campaign framing: the configuration, phase-tagged wall
    timers (setup/golden-prefix/beam/drain), and the final readouts.
``early-exit``
    Fast-grading framing: the run terminated at a golden-timeline
    checkpoint (reason, boundary instruction, instructions skipped).
    The ``close`` events that follow carry the golden end-of-run
    instruction count, so lifecycles are byte-identical to the
    full-execution trace.

Correlation: the bus keeps a table of *open* upsets keyed by
``(target, word)``.  A ``detect``/``resolve`` at a site attaches to the
most recent open upset there (or any open upset of the target when the
word is unknown, e.g. FPU register corrections).  ``close_open``
guarantees every strike reaches a terminal event.

Hot-path contract: instrumented code must guard emission with
``if telemetry.enabled:`` and only on already-rare paths (error
handling, recovery, end of run).  The fault-free fast paths
(``lookup_word``, ``read_fast``, ``run_fast``) are untouched, and the
module-level :data:`NULL_TELEMETRY` singleton -- disabled, null-sinked
-- is what every component holds by default, so the disabled layer
costs one attribute read on paths that were already off the fast path.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.sinks import NullSink

#: Terminal lifecycle states an upset can reach via ``close``.
CLOSE_STATES = ("latent", "masked")


class Telemetry:
    """Structured event emitter with SEU open-upset correlation."""

    __slots__ = ("enabled", "sink", "metrics", "_next_upset", "_open")

    def __init__(self, sink=None, *, enabled: bool = True,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self.enabled = enabled
        self.sink = sink if sink is not None else NullSink()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._next_upset = 0
        #: (target, word) -> open upset ids at that site, oldest first.
        self._open: Dict[Tuple[str, Optional[int]], List[int]] = {}

    # ------------------------------------------------------------------
    # Emission primitives
    # ------------------------------------------------------------------

    def emit(self, event: Dict[str, object]) -> None:
        self.sink.write(event)
        self.metrics.count("events." + str(event["ev"]))

    def note(self, ev: str, **fields) -> None:
        """Emit a free-form event of type *ev*."""
        event: Dict[str, object] = {"ev": ev}
        event.update(fields)
        self.emit(event)

    # ------------------------------------------------------------------
    # SEU lifecycle
    # ------------------------------------------------------------------

    def strike(self, target: str, bit: int, *, word: Optional[int],
               time_s: float, let: float, mbu: bool, instr: int,
               kind: Optional[str] = None) -> int:
        """Record an injected fault; returns the new upset id.

        ``kind`` names the fault model for non-default injections
        (stuck-at, SEFI, attacks); ``None`` -- the transient-SEU default
        -- is omitted from the event so existing traces stay
        byte-identical.
        """
        upset = self._next_upset
        self._next_upset += 1
        self._open.setdefault((target, word), []).append(upset)
        event: Dict[str, object] = {
            "ev": "strike", "upset": upset, "target": target,
            "word": word, "bit": bit, "t_s": round(time_s, 6),
            "let": let, "mbu": bool(mbu), "instr": instr}
        if kind is not None:
            event["kind"] = kind
        self.emit(event)
        return upset

    def _match(self, site: str, word: Optional[int]) -> Optional[int]:
        """Most recent open upset at the site, without closing it."""
        ids = self._open.get((site, word))
        if ids:
            return ids[-1]
        if word is not None:
            return None
        # Word unknown: any open upset of this target (newest site wins).
        best = None
        for (target, _), open_ids in self._open.items():
            if target == site and open_ids:
                last = open_ids[-1]
                if best is None or last > best:
                    best = last
        return best

    def detect(self, site: str, word: Optional[int], *, mech: str,
               kind: str, counter: Optional[str], instr: int,
               count: int = 1) -> None:
        """A protection layer flagged the word (counter incremented)."""
        event: Dict[str, object] = {
            "ev": "detect", "upset": self._match(site, word), "site": site,
            "word": word, "mech": mech, "kind": kind, "counter": counter,
            "instr": instr,
        }
        if count != 1:
            event["count"] = count
        self.emit(event)
        if counter:
            self.metrics.count("counter." + counter, count)

    def resolve(self, site: str, word: Optional[int], *, action: str,
                instr: int) -> None:
        """The corruption at the site was repaired / trapped.

        Closes every open upset at the site (an MBU pair in one word
        resolves together).  With ``word=None`` closes every open upset
        of the target.
        """
        closed = self._pop(site, word)
        if not closed:
            # Resolution with no matching strike (e.g. a bus error trap,
            # an EDAC fix of wear outside the trace) -- still an event.
            closed = [None]
        for upset in closed:
            self.emit({"ev": "resolve", "upset": upset, "site": site,
                       "word": word, "action": action, "instr": instr})

    def _pop(self, site: str, word: Optional[int]) -> List[int]:
        if word is not None:
            return self._open.pop((site, word), [])
        popped: List[int] = []
        for key in [k for k in self._open if k[0] == site]:
            popped.extend(self._open.pop(key))
        return sorted(popped)

    def tmr_scrub(self, *, instr: int) -> None:
        """The TMR bank voted out every pending flip-flop upset."""
        for upset in self._pop("flipflops", None):
            self.emit({"ev": "detect", "upset": upset, "site": "flipflops",
                       "word": None, "mech": "tmr-vote",
                       "kind": "correctable", "counter": None,
                       "instr": instr})
            self.emit({"ev": "resolve", "upset": upset, "site": "flipflops",
                       "word": None, "action": "tmr-scrub", "instr": instr})

    def close_open(self, classify: Callable[[str, Optional[int]], str], *,
                   instr: int) -> None:
        """Close every still-open upset with a terminal state.

        *classify* maps ``(target, word)`` to one of
        :data:`CLOSE_STATES` -- ``latent`` if the corruption is still
        resident, ``masked`` if it was overwritten unobserved.
        """
        pending = []
        for (target, word), ids in self._open.items():
            for upset in ids:
                pending.append((upset, target, word))
        self._open.clear()
        for upset, target, word in sorted(pending):
            self.emit({"ev": "close", "upset": upset, "target": target,
                       "word": word, "state": classify(target, word),
                       "instr": instr})

    @property
    def open_upsets(self) -> int:
        return sum(len(ids) for ids in self._open.values())


#: Shared disabled bus: the default for every instrumented component.
NULL_TELEMETRY = Telemetry(NullSink(), enabled=False)
