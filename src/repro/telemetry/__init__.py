"""Structured telemetry for the fault path: events, sinks, metrics.

The observability layer the paper's host computer approximated with
counter read-outs: every SEU gets a lifecycle trace (strike ->
detection -> resolution), campaigns attach phase-tagged timers, and the
whole stream lands in crash-safe JSONL next to the ``ResultStore``.
Disabled (the default, via :data:`NULL_TELEMETRY`) the layer is
zero-cost -- see the throughput benchmark guard.
"""

from repro.telemetry.bus import CLOSE_STATES, NULL_TELEMETRY, Telemetry
from repro.telemetry.metrics import Histogram, MetricsRegistry
from repro.telemetry.sinks import JsonlTraceSink, MemorySink, NullSink
from repro.telemetry.trace import (
    Lifecycle,
    TraceStats,
    fold_stats,
    lifecycles,
    read_trace,
    render_lifecycle,
    render_stats,
)

__all__ = [
    "CLOSE_STATES",
    "Histogram",
    "JsonlTraceSink",
    "Lifecycle",
    "MemorySink",
    "MetricsRegistry",
    "NULL_TELEMETRY",
    "NullSink",
    "Telemetry",
    "TraceStats",
    "fold_stats",
    "lifecycles",
    "read_trace",
    "render_lifecycle",
    "render_stats",
]
