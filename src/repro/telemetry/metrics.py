"""Metrics registry: named counters and log-2 bucketed histograms.

The registry is the in-process aggregate view of the event stream --
the ``stats`` CLI folds a JSONL trace back into one of these, and an
enabled :class:`~repro.telemetry.bus.Telemetry` keeps per-event-type
counts as it emits.  Histograms use power-of-two buckets because the
quantities they hold (detection latencies in instructions, downtime in
cycles) span four orders of magnitude.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple


class Histogram:
    """Log-2 bucketed histogram of non-negative integer observations.

    Bucket ``i`` counts observations in ``[2**(i-1), 2**i)``; bucket 0
    counts exact zeros.  Tracks count/total/min/max exactly.
    """

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0
        self.min = None  # type: ignore[assignment]
        self.max = None  # type: ignore[assignment]
        self.buckets: Dict[int, int] = {}

    def observe(self, value: int) -> None:
        value = int(value)
        if value < 0:
            value = 0
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        bucket = value.bit_length()  # 0 -> 0, 1 -> 1, 2..3 -> 2, 4..7 -> 3
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def bucket_rows(self) -> List[Tuple[str, int]]:
        """``(label, count)`` rows for the non-empty buckets, ascending."""
        rows = []
        for bucket in sorted(self.buckets):
            if bucket == 0:
                label = "0"
            elif bucket == 1:
                label = "1"
            else:
                label = f"{2 ** (bucket - 1)}-{2 ** bucket - 1}"
            rows.append((label, self.buckets[bucket]))
        return rows

    def as_dict(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "buckets": {str(k): v for k, v in sorted(self.buckets.items())},
        }


class MetricsRegistry:
    """Named monotonic counters plus named histograms."""

    __slots__ = ("counters", "histograms")

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.histograms: Dict[str, Histogram] = {}

    def count(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def histogram(self, name: str) -> Histogram:
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram()
        return histogram

    def observe(self, name: str, value: int) -> None:
        self.histogram(name).observe(value)

    def names(self) -> Iterable[str]:
        return sorted(set(self.counters) | set(self.histograms))

    def as_dict(self) -> Dict[str, object]:
        return {
            "counters": dict(sorted(self.counters.items())),
            "histograms": {name: h.as_dict()
                           for name, h in sorted(self.histograms.items())},
        }
