"""Event sinks: where telemetry events go.

A sink is anything with a ``write(event)`` method taking a plain dict.
Three implementations cover the whole design space:

``NullSink``
    Swallows everything.  Paired with a disabled :class:`~repro.telemetry.bus.
    Telemetry` it makes the layer zero-cost; paired with an *enabled* bus it
    measures the pure emission overhead (the benchmark guard).

``MemorySink``
    Buffers events in a list.  Campaign worker processes use it so a run's
    trace can ride back to the parent attached to the ``CampaignResult``.

``JsonlTraceSink``
    Crash-safe JSONL file sink, one event per line, mirroring the
    ``ResultStore`` discipline: events are buffered per run and
    flush+fsync'd in one batch by :meth:`write_run`, so a killed campaign
    leaves at most one truncated tail line and never a half-written run.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional


class NullSink:
    """Discards every event."""

    __slots__ = ()

    def write(self, event: Dict[str, object]) -> None:
        pass

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


class MemorySink:
    """Buffers events in :attr:`events`, in emission order."""

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: List[Dict[str, object]] = []

    def write(self, event: Dict[str, object]) -> None:
        self.events.append(event)

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


class JsonlTraceSink:
    """Append-only JSONL trace file, one event object per line.

    Events written through :meth:`write` land in an internal buffer;
    :meth:`flush` serialises the buffer, appends it and fsyncs, so the
    file is consistent after a crash mid-campaign.  :meth:`write_run`
    tags each event of a finished run with its run index and flushes in
    one batch -- the unit of durability is the run, matching
    ``ResultStore.append``.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._buffer: List[Dict[str, object]] = []
        self._handle = None

    def write(self, event: Dict[str, object]) -> None:
        self._buffer.append(event)

    def write_run(self, events: List[Dict[str, object]],
                  run: int) -> None:
        """Append a whole run's events, each tagged ``"run": run``."""
        for event in events:
            tagged = {"run": run}
            tagged.update(event)
            self._buffer.append(tagged)
        self.flush()

    def flush(self) -> None:
        if not self._buffer:
            return
        if self._handle is None:
            self._handle = open(self.path, "a", encoding="utf-8")
        lines = "".join(json.dumps(event) + "\n" for event in self._buffer)
        self._buffer.clear()
        self._handle.write(lines)
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        self.flush()
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JsonlTraceSink":
        return self

    def __exit__(self, *exc) -> Optional[bool]:
        self.close()
        return None
