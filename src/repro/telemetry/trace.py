"""Reading, folding and rendering JSONL campaign traces.

The reader is deliberately forgiving, matching ``ResultStore.load``: a
truncated final line (crash mid-append) is dropped, blank lines are
skipped, and unknown keys ride along untouched so traces written by a
newer build still fold under an older one.

``fold_stats`` is the ``stats`` subcommand's engine: it rebuilds the
paper's Table-2 counters from the ``detect`` events alone and
cross-checks them against the ``run-end`` readouts each run recorded --
if the two disagree, the instrumentation missed an increment and
:attr:`TraceStats.consistent` goes False.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.telemetry.metrics import Histogram

#: Table 2 column order (Total is derived, checked independently).
TABLE2_COUNTERS = ("ITE", "IDE", "DTE", "DDE", "RFE")


def read_trace(path: str) -> List[Dict[str, object]]:
    """Load every event from a JSONL trace file.

    Tolerates a truncated tail line; raises :class:`ConfigurationError`
    for garbage elsewhere (the file is not a trace).
    """
    events: List[Dict[str, object]] = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
    except OSError as exc:
        raise ConfigurationError(f"cannot read trace {path!r}: {exc}")
    for number, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError:
            if number == len(lines) - 1:
                break  # crash-truncated tail
            raise ConfigurationError(
                f"{path}:{number + 1}: not a JSON event line")
        if not isinstance(event, dict) or "ev" not in event:
            raise ConfigurationError(
                f"{path}:{number + 1}: event object must have an 'ev' key")
        events.append(event)
    return events


@dataclass
class Lifecycle:
    """One upset's event chain within one run."""

    run: int
    upset: int
    strike: Optional[Dict[str, object]] = None
    detects: List[Dict[str, object]] = field(default_factory=list)
    resolves: List[Dict[str, object]] = field(default_factory=list)
    close: Optional[Dict[str, object]] = None

    @property
    def target(self) -> Optional[str]:
        """Struck target name, when the strike event is in the trace."""
        if self.strike is not None:
            return str(self.strike.get("target"))
        return None

    @property
    def state(self) -> str:
        """Terminal state: the resolve action, close state, or 'open'."""
        if self.resolves:
            return str(self.resolves[-1].get("action"))
        if self.close is not None:
            return str(self.close.get("state"))
        return "open"

    @property
    def terminal(self) -> bool:
        return bool(self.resolves) or self.close is not None

    @property
    def latency(self) -> Optional[int]:
        """Instructions from strike to first detection, when both known."""
        if self.strike is None or not self.detects:
            return None
        delta = int(self.detects[0].get("instr", 0)) - \
            int(self.strike.get("instr", 0))
        return max(0, delta)


def lifecycles(events: Sequence[Dict[str, object]]) -> List[Lifecycle]:
    """Group events into per-upset lifecycles, ordered by (run, upset)."""
    table: Dict[Tuple[int, int], Lifecycle] = {}

    def cell(event: Dict[str, object]) -> Optional[Lifecycle]:
        upset = event.get("upset")
        if upset is None:
            return None
        key = (int(event.get("run", 0)), int(upset))
        life = table.get(key)
        if life is None:
            life = table[key] = Lifecycle(run=key[0], upset=key[1])
        return life

    for event in events:
        kind = event.get("ev")
        life = cell(event) if kind in ("strike", "detect", "resolve",
                                       "close") else None
        if life is None:
            continue
        if kind == "strike":
            life.strike = event
        elif kind == "detect":
            life.detects.append(event)
        elif kind == "resolve":
            life.resolves.append(event)
        elif kind == "close":
            life.close = event
    return [table[key] for key in sorted(table)]


@dataclass
class SiteStats:
    detected: int = 0
    corrected: int = 0
    traps: int = 0
    latency: Histogram = field(default_factory=Histogram)


@dataclass
class TraceStats:
    """A whole trace folded down to aggregate readouts."""

    runs: int = 0
    strikes: int = 0
    strikes_by_target: Dict[str, int] = field(default_factory=dict)
    #: Strikes per fault-model kind; events without a ``kind`` tag are
    #: the transient-SEU default and fold under ``"seu"``.
    strikes_by_kind: Dict[str, int] = field(default_factory=dict)
    #: Table-2 counters rebuilt from detect events.
    counters: Dict[str, int] = field(default_factory=dict)
    #: The same counters summed from the run-end readouts.
    reported: Dict[str, int] = field(default_factory=dict)
    sites: Dict[str, SiteStats] = field(default_factory=dict)
    states: Dict[str, int] = field(default_factory=dict)
    spans: Dict[str, float] = field(default_factory=dict)
    recoveries: Dict[str, int] = field(default_factory=dict)
    recovery_downtime: Dict[str, int] = field(default_factory=dict)
    edac_corrected: int = 0
    trap_counts: Dict[str, int] = field(default_factory=dict)
    watchdog_resets: int = 0
    compare_errors: int = 0
    #: Early-exit notes folded by reason (reconverged / diverged /
    #: static-masked); empty for full-execution traces.
    early_exits: Dict[str, int] = field(default_factory=dict)
    #: The static analyzer's ACE summary, from the warm start's ``ace``
    #: note (None when the trace carries none).
    ace: Optional[Dict[str, object]] = None

    @property
    def consistent(self) -> bool:
        """Do event-derived counters match every run-end readout?"""
        for name in TABLE2_COUNTERS + ("Total",):
            if self.counters.get(name, 0) != self.reported.get(name, 0):
                return False
        return True


def fold_stats(events: Sequence[Dict[str, object]]) -> TraceStats:
    """Fold a trace into :class:`TraceStats`."""
    stats = TraceStats()
    for name in TABLE2_COUNTERS:
        stats.counters[name] = 0
        stats.reported[name] = 0
    stats.counters["Total"] = 0
    stats.reported["Total"] = 0

    strike_instr: Dict[Tuple[int, int], int] = {}
    seen_detect: set = set()

    for event in events:
        kind = event.get("ev")
        run = int(event.get("run", 0))
        if kind == "strike":
            stats.strikes += 1
            target = str(event.get("target"))
            stats.strikes_by_target[target] = \
                stats.strikes_by_target.get(target, 0) + 1
            fault_kind = str(event.get("kind", "seu"))
            stats.strikes_by_kind[fault_kind] = \
                stats.strikes_by_kind.get(fault_kind, 0) + 1
            upset = event.get("upset")
            if upset is not None:
                strike_instr[(run, int(upset))] = int(event.get("instr", 0))
        elif kind == "detect":
            site = str(event.get("site"))
            cell = stats.sites.get(site)
            if cell is None:
                cell = stats.sites[site] = SiteStats()
            count = int(event.get("count", 1))
            cell.detected += count
            if event.get("kind") == "correctable":
                cell.corrected += count
            counter = event.get("counter")
            if counter in stats.counters:
                stats.counters[str(counter)] += count
                stats.counters["Total"] += count
            elif counter == "EDAC":
                stats.edac_corrected += count
            elif counter:
                stats.trap_counts[str(counter)] = \
                    stats.trap_counts.get(str(counter), 0) + count
            upset = event.get("upset")
            if upset is not None:
                key = (run, int(upset))
                if key in strike_instr and key not in seen_detect:
                    seen_detect.add(key)
                    cell.latency.observe(
                        int(event.get("instr", 0)) - strike_instr[key])
        elif kind == "resolve":
            action = str(event.get("action"))
            if action == "trap":
                site = str(event.get("site"))
                cell = stats.sites.get(site)
                if cell is None:
                    cell = stats.sites[site] = SiteStats()
                cell.traps += 1
            if event.get("upset") is not None:
                stats.states[action] = stats.states.get(action, 0) + 1
        elif kind == "close":
            state = str(event.get("state"))
            stats.states[state] = stats.states.get(state, 0) + 1
        elif kind == "span":
            phase = str(event.get("phase"))
            stats.spans[phase] = stats.spans.get(phase, 0.0) + \
                float(event.get("wall_s", 0.0))
        elif kind == "recovery":
            level = str(event.get("level"))
            stats.recoveries[level] = stats.recoveries.get(level, 0) + 1
            stats.recovery_downtime[level] = \
                stats.recovery_downtime.get(level, 0) + \
                int(event.get("downtime_cycles", 0))
        elif kind == "watchdog-reset":
            stats.watchdog_resets += 1
        elif kind == "early-exit":
            reason = str(event.get("reason"))
            stats.early_exits[reason] = stats.early_exits.get(reason, 0) + 1
        elif kind == "ace":
            # Every run of a warm campaign notes the same map; keep one.
            stats.ace = {name: value for name, value in event.items()
                         if name not in ("ev", "run")}
        elif kind == "compare":
            stats.compare_errors += 1
        elif kind == "run-end":
            stats.runs += 1
            counts = event.get("counts")
            if isinstance(counts, dict):
                for name, value in counts.items():
                    if name in stats.reported:
                        stats.reported[name] += int(value)
    return stats


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------

def _table(rows: Sequence[Sequence[object]],
           header: Sequence[str]) -> List[str]:
    widths = [max(len(str(header[i])),
                  *(len(str(row[i])) for row in rows)) if rows
              else len(str(header[i])) for i in range(len(header))]
    lines = ["  ".join(str(header[i]).ljust(widths[i])
                       for i in range(len(header)))]
    lines.append("-" * len(lines[0]))
    for row in rows:
        lines.append("  ".join(str(row[i]).ljust(widths[i])
                               for i in range(len(header))))
    return lines


def render_lifecycle(life: Lifecycle) -> str:
    """Multi-line view of one upset's chain."""
    strike = life.strike or {}
    head = (f"run {life.run} upset {life.upset}  "
            f"{strike.get('target', '?')}"
            f"[{strike.get('word', '?')}] bit {strike.get('bit', '?')}  "
            f"t={strike.get('t_s', '?')}s  "
            f"instr {strike.get('instr', '?')}")
    if strike.get("mbu"):
        head += "  MBU"
    lines = [head]
    for det in life.detects:
        counter = det.get("counter")
        lines.append(f"    detect   {det.get('mech'):<12} "
                     f"{det.get('kind'):<13} "
                     f"{counter or '-':<22} instr {det.get('instr')}")
    for res in life.resolves:
        lines.append(f"    resolve  {res.get('action'):<26} "
                     f"{'':<22} instr {res.get('instr')}")
    if life.close is not None:
        lines.append(f"    close    {life.close.get('state'):<26} "
                     f"{'':<22} instr {life.close.get('instr')}")
    if not life.terminal:
        lines.append("    (no terminal event)")
    return "\n".join(lines)


def render_stats(stats: TraceStats) -> str:
    """The ``stats`` subcommand's text block."""
    lines = [f"trace: {stats.runs} run(s), {stats.strikes} strike(s)"]
    if stats.strikes_by_target:
        per = ", ".join(f"{target} {count}" for target, count
                        in sorted(stats.strikes_by_target.items()))
        lines.append(f"  strikes by target: {per}")
    if stats.strikes_by_kind and set(stats.strikes_by_kind) != {"seu"}:
        per = ", ".join(f"{kind} {count}" for kind, count
                        in sorted(stats.strikes_by_kind.items()))
        lines.append(f"  strikes by fault model: {per}")
    lines.append("")
    lines.append("Table 2 counters (rebuilt from detect events):")
    names = TABLE2_COUNTERS + ("Total",)
    lines.extend("  " + line for line in _table(
        [[stats.counters.get(n, 0) for n in names],
         [stats.reported.get(n, 0) for n in names]],
        header=names))
    verdict = ("match" if stats.consistent else "MISMATCH")
    lines.append(f"  events vs run-end readouts: {verdict}")
    if stats.edac_corrected:
        lines.append(f"  EDAC corrected (external memory): "
                     f"{stats.edac_corrected}")
    for name, count in sorted(stats.trap_counts.items()):
        lines.append(f"  {name}: {count}")
    if stats.sites:
        lines.append("")
        lines.append("per-site detection/correction:")
        rows = []
        for site, cell in sorted(stats.sites.items()):
            latency = (f"{cell.latency.mean:.0f}/{cell.latency.max}"
                       if cell.latency.count else "-")
            rows.append([site, cell.detected, cell.corrected, cell.traps,
                         latency])
        lines.extend("  " + line for line in _table(
            rows, header=["site", "detected", "corrected", "traps",
                          "latency mean/max (instr)"]))
    if stats.states:
        lines.append("")
        lines.append("terminal states: " + "  ".join(
            f"{state} {count}" for state, count
            in sorted(stats.states.items())))
    if stats.ace is not None:
        lines.append("")
        lines.append(
            f"static analysis: ACE fraction "
            f"{float(stats.ace.get('fraction', 1.0)):.3f} "
            f"({stats.ace.get('claimable_words', 0)}/"
            f"{stats.ace.get('regfile_words', 0)} register-file words "
            f"claimed dead"
            + (", fpregs dead" if stats.ace.get("fpregs_dead") else "")
            + ("" if stats.ace.get("window_claims")
               else ", degraded to globals") + ")")
    if stats.early_exits:
        lines.append("early exits: " + "  ".join(
            f"{reason} {count}" for reason, count
            in sorted(stats.early_exits.items())))
    if stats.spans:
        lines.append("")
        lines.append("phase timers: " + "  ".join(
            f"{phase} {wall:.3f}s" for phase, wall
            in sorted(stats.spans.items())))
    if stats.recoveries:
        lines.append("")
        lines.append("recoveries:")
        for level, count in sorted(stats.recoveries.items()):
            lines.append(f"  {level:<17} x{count:<5} "
                         f"{stats.recovery_downtime.get(level, 0):>9} cycles")
    if stats.watchdog_resets:
        lines.append(f"watchdog resets: {stats.watchdog_resets}")
    if stats.compare_errors:
        lines.append(f"lock-step compare errors: {stats.compare_errors}")
    return "\n".join(lines)
