"""SPARC V8 trap model: trap types, numbers, and priorities.

LEON's fault-tolerance reuses the normal trap machinery: a correctable
register-file error restarts the pipeline exactly like a trap (but jumps to
the failing instruction instead of a trap vector), and an uncorrectable
error takes the ``r_register_access_error`` trap.  Uncorrectable EDAC errors
reach the processor as precise instruction/data access *error* traps via
cache sub-blocking (section 4.6).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TrapType(enum.IntEnum):
    """Trap type (``tt``) values from the SPARC V8 manual, table 7-1."""

    RESET = 0x00
    INSTRUCTION_ACCESS_EXCEPTION = 0x01
    ILLEGAL_INSTRUCTION = 0x02
    PRIVILEGED_INSTRUCTION = 0x03
    FP_DISABLED = 0x04
    WINDOW_OVERFLOW = 0x05
    WINDOW_UNDERFLOW = 0x06
    MEM_ADDRESS_NOT_ALIGNED = 0x07
    FP_EXCEPTION = 0x08
    DATA_ACCESS_EXCEPTION = 0x09
    TAG_OVERFLOW = 0x0A
    CP_DISABLED = 0x24
    R_REGISTER_ACCESS_ERROR = 0x20
    INSTRUCTION_ACCESS_ERROR = 0x21
    DATA_ACCESS_ERROR = 0x29
    DIVISION_BY_ZERO = 0x2A
    DATA_STORE_ERROR = 0x2B
    INTERRUPT_LEVEL_1 = 0x11
    INTERRUPT_LEVEL_2 = 0x12
    INTERRUPT_LEVEL_3 = 0x13
    INTERRUPT_LEVEL_4 = 0x14
    INTERRUPT_LEVEL_5 = 0x15
    INTERRUPT_LEVEL_6 = 0x16
    INTERRUPT_LEVEL_7 = 0x17
    INTERRUPT_LEVEL_8 = 0x18
    INTERRUPT_LEVEL_9 = 0x19
    INTERRUPT_LEVEL_10 = 0x1A
    INTERRUPT_LEVEL_11 = 0x1B
    INTERRUPT_LEVEL_12 = 0x1C
    INTERRUPT_LEVEL_13 = 0x1D
    INTERRUPT_LEVEL_14 = 0x1E
    INTERRUPT_LEVEL_15 = 0x1F
    TRAP_INSTRUCTION = 0x80  # 0x80 + software trap number

    @classmethod
    def interrupt(cls, level: int) -> "TrapType":
        """The trap type for interrupt level 1..15."""
        if not 1 <= level <= 15:
            raise ValueError(f"interrupt level {level} out of range 1..15")
        return cls(0x10 + level)

    @classmethod
    def software(cls, number: int) -> int:
        """The tt value for ``ta number`` (software trap)."""
        return 0x80 + (number & 0x7F)


#: Synchronous trap priorities (1 = highest), SPARC V8 manual table 7-1.
#: Used when several trap conditions occur on the same instruction.
TRAP_PRIORITIES = {
    TrapType.RESET: 1,
    TrapType.INSTRUCTION_ACCESS_ERROR: 3,
    TrapType.R_REGISTER_ACCESS_ERROR: 4,
    TrapType.INSTRUCTION_ACCESS_EXCEPTION: 5,
    TrapType.PRIVILEGED_INSTRUCTION: 6,
    TrapType.ILLEGAL_INSTRUCTION: 7,
    TrapType.FP_DISABLED: 8,
    TrapType.CP_DISABLED: 8,
    TrapType.WINDOW_OVERFLOW: 9,
    TrapType.WINDOW_UNDERFLOW: 9,
    TrapType.MEM_ADDRESS_NOT_ALIGNED: 10,
    TrapType.FP_EXCEPTION: 11,
    TrapType.DATA_ACCESS_ERROR: 12,
    TrapType.DATA_ACCESS_EXCEPTION: 13,
    TrapType.TAG_OVERFLOW: 14,
    TrapType.DIVISION_BY_ZERO: 15,
    TrapType.DATA_STORE_ERROR: 2,
    TrapType.TRAP_INSTRUCTION: 16,
}


@dataclass(frozen=True)
class Trap:
    """One pending trap: its tt value and (for diagnostics) the address."""

    tt: int
    address: int = 0
    description: str = ""

    @property
    def priority(self) -> int:
        if 0x11 <= self.tt <= 0x1F:
            # Interrupts: priority 17..31, level 15 highest.
            return 17 + (0x1F - self.tt)
        if self.tt >= 0x80:
            return TRAP_PRIORITIES[TrapType.TRAP_INSTRUCTION]
        try:
            return TRAP_PRIORITIES[TrapType(self.tt)]
        except (ValueError, KeyError):
            return 32

    def outranks(self, other: "Trap") -> bool:
        """True when this trap takes precedence over ``other``."""
        return self.priority < other.priority
