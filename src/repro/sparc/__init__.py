"""SPARC V8 instruction-set architecture: formats, decoder, assembler.

LEON implements the full SPARC V8 integer instruction set [SPARC Architecture
Manual Version 8, 1992].  This package is the architectural layer shared by
the integer unit, the assembler used to build the test programs, and the
disassembler used in traces.
"""

from repro.sparc.asm import Assembler, Program, assemble
from repro.sparc.decode import Instr, decode
from repro.sparc.disasm import disassemble
from repro.sparc.isa import Cond, FCond, Op, Op2, Op3, Op3Mem, Opf, Reg
from repro.sparc.traps import Trap, TrapType

__all__ = [
    "Assembler",
    "Cond",
    "FCond",
    "Instr",
    "Op",
    "Op2",
    "Op3",
    "Op3Mem",
    "Opf",
    "Program",
    "Reg",
    "Trap",
    "TrapType",
    "assemble",
    "decode",
    "disassemble",
]
