"""Binary decoder: 32-bit instruction words to :class:`Instr` records.

Decoding is pure and cached per word value, so the integer unit can decode
each distinct instruction once per program regardless of how many times it
executes.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Optional, Tuple

from repro.sparc.isa import Op, Op2, Op3, Op3Mem, Opf, sign_extend

#: op3 values (op = 2) that every LEON configuration implements.
_ARITH_OP3 = {member.value for member in Op3}
#: op3 values (op = 3) implemented by LEON (normal + alternate space + FP).
_MEM_OP3 = {member.value for member in Op3Mem}
_FPOP_OPF = {member.value for member in Opf}

#: Integer stores also read their data register(s) in the execute stage.
_STORE_OP3 = {Op3Mem.ST, Op3Mem.STB, Op3Mem.STH, Op3Mem.STD,
              Op3Mem.STA, Op3Mem.STBA, Op3Mem.STHA, Op3Mem.STDA}
_DOUBLE_STORE_OP3 = {Op3Mem.STD, Op3Mem.STDA}

#: Arithmetic-format op3 values whose ``rd`` field is not an integer
#: destination (state writes go to %y/%psr/%wim/%tbr, a trap, or nowhere).
_NO_RD_ARITH_OP3 = {Op3.WRASR, Op3.WRPSR, Op3.WRWIM, Op3.WRTBR,
                    Op3.RETT, Op3.TICC, Op3.FLUSH}
#: Memory-format op3 values that write a single integer destination.
_INTEGER_LOAD_OP3 = {Op3Mem.LD, Op3Mem.LDUB, Op3Mem.LDUH, Op3Mem.LDSB,
                     Op3Mem.LDSH, Op3Mem.LDSTUB, Op3Mem.SWAP,
                     Op3Mem.LDA, Op3Mem.LDUBA, Op3Mem.LDUHA, Op3Mem.LDSBA,
                     Op3Mem.LDSHA, Op3Mem.LDSTUBA, Op3Mem.SWAPA}
_DOUBLE_LOAD_OP3 = {Op3Mem.LDD, Op3Mem.LDDA}

#: Size of the decode memo.  Programs are decoded once per distinct word,
#: so the cache must never evict within a program run; see
#: :func:`decode_cache_holds`.
DECODE_CACHE_WORDS = 65536

_ARITH_NAMES = {member.value: member.name.lower() for member in Op3}
_MEM_NAMES = {member.value: member.name.lower() for member in Op3Mem}
_FP_NAMES = {member.value: member.name.lower() for member in Opf}


@dataclass(frozen=True, slots=True)
class Instr:
    """One decoded SPARC V8 instruction.

    ``valid`` is False for words that do not decode to an implemented
    instruction; executing such an instruction takes an
    ``illegal_instruction`` trap rather than failing decode, matching
    hardware behaviour.
    """

    word: int
    op: int
    mnemonic: str
    valid: bool = True
    op2: int = 0
    op3: int = 0
    opf: int = 0
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: Optional[int] = None  # sign-extended simm13 when the i bit is set
    cond: int = 0
    annul: bool = False
    disp: int = 0  # branch/call displacement in *bytes*, sign-extended
    imm22: int = 0  # SETHI immediate (already shifted to bits 31:10)
    asi: int = 0
    #: Architectural registers read by the execute stage (the operands the
    #: FT pipeline checks, section 4.4).  Precomputed here so the hot
    #: per-step operand check never rebuilds the tuple.
    sources: Tuple[int, ...] = ()
    #: Architectural integer registers *written* by the instruction
    #: (``%g0`` excluded -- writes to it are discarded, so it is not a
    #: definition).  Static-analysis metadata: the per-instruction def set
    #: the CFG/liveness analyzer (:mod:`repro.analysis.program`) pairs
    #: with ``sources``.  ``save``/``restore`` write their ``rd`` in the
    #: *new* window; the analyzer owns that depth shift.
    defs: Tuple[int, ...] = ()

    @property
    def is_branch(self) -> bool:
        return self.op == Op.FORMAT2 and self.op2 in (Op2.BICC, Op2.FBFCC, Op2.CBCCC)

    @property
    def is_fpop(self) -> bool:
        return self.op == Op.ARITH and self.op3 in (Op3.FPOP1, Op3.FPOP2)

    @property
    def uses_immediate(self) -> bool:
        return self.imm is not None


def _decode_uncached(word: int) -> Instr:
    word &= 0xFFFFFFFF
    op = word >> 30
    if op == Op.CALL:
        disp30 = sign_extend(word, 30) * 4
        return Instr(word, op, "call", disp=disp30, rd=15, defs=(15,))
    if op == Op.FORMAT2:
        return _decode_format2(word)
    return _decode_format3(word, op)


def _decode_format2(word: int) -> Instr:
    op2 = (word >> 22) & 7
    rd = (word >> 25) & 0x1F
    if op2 == Op2.SETHI:
        imm22 = (word & 0x3FFFFF) << 10
        mnemonic = "nop" if rd == 0 and imm22 == 0 else "sethi"
        return Instr(word, Op.FORMAT2, mnemonic, op2=op2, rd=rd, imm22=imm22,
                     defs=(rd,) if rd else ())
    if op2 in (Op2.BICC, Op2.FBFCC, Op2.CBCCC):
        cond = (word >> 25) & 0xF
        annul = bool((word >> 29) & 1)
        disp22 = sign_extend(word, 22) * 4
        mnemonic = {Op2.BICC: "bicc", Op2.FBFCC: "fbfcc", Op2.CBCCC: "cbccc"}[Op2(op2)]
        return Instr(word, Op.FORMAT2, mnemonic, op2=op2, cond=cond, annul=annul, disp=disp22)
    if op2 == Op2.UNIMP:
        return Instr(word, Op.FORMAT2, "unimp", op2=op2, imm22=word & 0x3FFFFF)
    return Instr(word, Op.FORMAT2, "invalid", valid=False, op2=op2)


def _decode_format3(word: int, op: int) -> Instr:
    op3 = (word >> 19) & 0x3F
    rd = (word >> 25) & 0x1F
    rs1 = (word >> 14) & 0x1F
    i_bit = (word >> 13) & 1
    rs2 = word & 0x1F
    imm = sign_extend(word, 13) if i_bit else None
    asi = (word >> 5) & 0xFF if not i_bit else 0

    if op == Op.ARITH:
        if op3 in (Op3.FPOP1, Op3.FPOP2):
            opf = (word >> 5) & 0x1FF
            valid = opf in _FPOP_OPF
            mnemonic = _FP_NAMES.get(opf, "invalid-fpop")
            return Instr(
                word, op, mnemonic, valid=valid, op3=op3, opf=opf, rd=rd, rs1=rs1, rs2=rs2
            )
        if op3 in (Op3.CPOP1, Op3.CPOP2):
            # LEON has co-processor interfaces but the simulated device does
            # not attach one; the instruction decodes and traps cp_disabled.
            return Instr(word, op, "cpop", op3=op3, rd=rd, rs1=rs1, rs2=rs2,
                         sources=(rs1, rs2))
        if op3 not in _ARITH_OP3:
            return Instr(word, op, "invalid", valid=False, op3=op3, rd=rd,
                         rs1=rs1, sources=(rs1,))
        mnemonic = _ARITH_NAMES[op3]
        sources = (rs1,) if imm is not None else (rs1, rs2)
        if op3 == Op3.TICC:
            cond = (word >> 25) & 0xF
            return Instr(word, op, "ticc", op3=op3, cond=cond, rs1=rs1, rs2=rs2,
                         imm=imm, sources=sources)
        defs = (rd,) if rd and op3 not in _NO_RD_ARITH_OP3 else ()
        return Instr(word, op, mnemonic, op3=op3, rd=rd, rs1=rs1, rs2=rs2,
                     imm=imm, sources=sources, defs=defs)

    # op == Op.MEM
    if op3 not in _MEM_OP3:
        return Instr(word, op, "invalid", valid=False, op3=op3, rd=rd, rs1=rs1,
                     sources=(rs1,))
    regs = [rs1]
    if imm is None:
        regs.append(rs2)
    if op3 in _STORE_OP3:
        regs.append(rd)
        if op3 in _DOUBLE_STORE_OP3:
            regs.append(rd | 1)
    if op3 in _INTEGER_LOAD_OP3:
        defs = (rd,) if rd else ()
    elif op3 in _DOUBLE_LOAD_OP3:
        defs = tuple(reg for reg in (rd, rd | 1) if reg)
    else:
        defs = ()
    return Instr(
        word, op, _MEM_NAMES[op3], op3=op3, rd=rd, rs1=rs1, rs2=rs2, imm=imm,
        asi=asi, sources=tuple(regs), defs=defs
    )


@lru_cache(maxsize=DECODE_CACHE_WORDS)
def decode(word: int) -> Instr:
    """Decode one 32-bit instruction word (memoized)."""
    return _decode_uncached(word)


def decode_cache_holds(program_words: int) -> bool:
    """True when a program of ``program_words`` distinct instruction words
    fits the decode memo without eviction (each word is then decoded at
    most once per run, however many times it executes)."""
    return program_words <= DECODE_CACHE_WORDS
