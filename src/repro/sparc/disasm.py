"""Disassembler: instruction words back to readable SPARC assembly.

Used by pipeline traces (Figure 2 reproduction), the campaign logs, and in
tests as a round-trip check on the assembler.
"""

from __future__ import annotations

from repro.sparc.decode import Instr, decode
from repro.sparc.isa import (
    BRANCH_CONDS,
    CBRANCH_CONDS,
    FBRANCH_CONDS,
    TRAP_CONDS,
    Op,
    Op2,
    Op3,
    Op3Mem,
)

_REG_NAMES = (
    [f"%g{i}" for i in range(8)]
    + [f"%o{i}" for i in range(6)]
    + ["%sp", "%o7"]
    + [f"%l{i}" for i in range(8)]
    + [f"%i{i}" for i in range(6)]
    + ["%fp", "%i7"]
)

_BRANCH_BY_COND = {cond: name for name, cond in BRANCH_CONDS.items() if name != "b"}
_BRANCH_BY_COND.update({BRANCH_CONDS["be"]: "be", BRANCH_CONDS["bne"]: "bne",
                        BRANCH_CONDS["bcs"]: "bcs", BRANCH_CONDS["bcc"]: "bcc"})
_FBRANCH_BY_COND = {cond: name for name, cond in FBRANCH_CONDS.items()}
_CBRANCH_BY_COND = {cond: name for name, cond in CBRANCH_CONDS.items()}
_TRAP_BY_COND = {cond: name for name, cond in TRAP_CONDS.items()}

_LOAD_NAMES = {
    Op3Mem.LD: "ld", Op3Mem.LDUB: "ldub", Op3Mem.LDUH: "lduh", Op3Mem.LDD: "ldd",
    Op3Mem.LDSB: "ldsb", Op3Mem.LDSH: "ldsh", Op3Mem.LDSTUB: "ldstub",
    Op3Mem.SWAP: "swap", Op3Mem.LDF: "ldf", Op3Mem.LDFSR: "ldfsr",
    Op3Mem.LDDF: "lddf",
}
_STORE_NAMES = {
    Op3Mem.ST: "st", Op3Mem.STB: "stb", Op3Mem.STH: "sth", Op3Mem.STD: "std",
    Op3Mem.STF: "stf", Op3Mem.STFSR: "stfsr", Op3Mem.STDF: "stdf",
    Op3Mem.STDFQ: "stdfq",
}


def _reg(index: int) -> str:
    return _REG_NAMES[index & 0x1F]


def _src2(instr: Instr) -> str:
    if instr.imm is not None:
        return f"{instr.imm:#x}" if abs(instr.imm) > 9 else str(instr.imm)
    return _reg(instr.rs2)


def _addr(instr: Instr) -> str:
    if instr.imm is not None:
        if instr.imm == 0:
            return f"[{_reg(instr.rs1)}]"
        sign = "+" if instr.imm >= 0 else "-"
        return f"[{_reg(instr.rs1)}{sign}{abs(instr.imm):#x}]"
    # Keep the register form explicit (even for %g0) so the text
    # reassembles to the identical encoding.
    return f"[{_reg(instr.rs1)}+{_reg(instr.rs2)}]"


def disassemble(word: int, pc: int = 0) -> str:
    """Disassemble one instruction word (``pc`` resolves branch targets)."""
    instr = decode(word)
    if not instr.valid:
        return f".word {word:#010x}"
    if instr.op == Op.CALL:
        return f"call {pc + instr.disp:#x}"
    if instr.op == Op.FORMAT2:
        return _disasm_format2(instr, pc)
    if instr.op == Op.ARITH:
        return _disasm_arith(instr)
    return _disasm_mem(instr)


def _disasm_format2(instr: Instr, pc: int) -> str:
    if instr.op2 == Op2.SETHI:
        if instr.rd == 0 and instr.imm22 == 0:
            return "nop"
        return f"sethi %hi({instr.imm22:#x}), {_reg(instr.rd)}"
    if instr.op2 == Op2.UNIMP:
        return f"unimp {instr.imm22:#x}"
    table = {Op2.BICC: _BRANCH_BY_COND,
             Op2.FBFCC: _FBRANCH_BY_COND,
             Op2.CBCCC: _CBRANCH_BY_COND}[instr.op2]
    name = table.get(instr.cond, f"b<{instr.cond}>")
    suffix = ",a" if instr.annul else ""
    return f"{name}{suffix} {pc + instr.disp:#x}"


def _disasm_arith(instr: Instr) -> str:
    op3 = instr.op3
    if op3 in (Op3.FPOP1, Op3.FPOP2):
        return _disasm_fpop(instr)
    if op3 == Op3.TICC:
        name = _TRAP_BY_COND.get(instr.cond, f"t<{instr.cond}>")
        return f"{name} {instr.imm if instr.imm is not None else instr.rs2}"
    if op3 == Op3.JMPL:
        if instr.rd == 0:
            if instr.rs1 == 31 and instr.imm == 8:
                return "ret"
            if instr.rs1 == 15 and instr.imm == 8:
                return "retl"
            return f"jmp {_addr(instr)}"
        return f"jmpl {_addr(instr)}, {_reg(instr.rd)}"
    if op3 == Op3.RETT:
        return f"rett {_addr(instr)}"
    if op3 == Op3.FLUSH:
        return f"flush {_addr(instr)}"
    if op3 == Op3.RDASR:
        return f"rd %y, {_reg(instr.rd)}"
    if op3 == Op3.RDPSR:
        return f"rd %psr, {_reg(instr.rd)}"
    if op3 == Op3.RDWIM:
        return f"rd %wim, {_reg(instr.rd)}"
    if op3 == Op3.RDTBR:
        return f"rd %tbr, {_reg(instr.rd)}"
    if op3 == Op3.WRASR:
        return f"wr {_reg(instr.rs1)}, {_src2(instr)}, %y"
    if op3 == Op3.WRPSR:
        return f"wr {_reg(instr.rs1)}, {_src2(instr)}, %psr"
    if op3 == Op3.WRWIM:
        return f"wr {_reg(instr.rs1)}, {_src2(instr)}, %wim"
    if op3 == Op3.WRTBR:
        return f"wr {_reg(instr.rs1)}, {_src2(instr)}, %tbr"
    name = instr.mnemonic
    if name == "or" and instr.rs1 == 0 and instr.imm is None and instr.rs2 == 0:
        return f"clr {_reg(instr.rd)}"
    if name == "or" and instr.rs1 == 0:
        return f"mov {_src2(instr)}, {_reg(instr.rd)}"
    if name == "subcc" and instr.rd == 0:
        return f"cmp {_reg(instr.rs1)}, {_src2(instr)}"
    if name in ("save", "restore") and instr.rs1 == 0 and instr.rd == 0 \
            and instr.imm is None and instr.rs2 == 0:
        return name
    return f"{name} {_reg(instr.rs1)}, {_src2(instr)}, {_reg(instr.rd)}"


def _disasm_fpop(instr: Instr) -> str:
    name = instr.mnemonic
    if name.startswith("fcmp"):
        return f"{name} %f{instr.rs1}, %f{instr.rs2}"
    if name in ("fmovs", "fnegs", "fabss", "fsqrts", "fsqrtd",
                "fitos", "fitod", "fstoi", "fdtoi", "fstod", "fdtos"):
        return f"{name} %f{instr.rs2}, %f{instr.rd}"
    return f"{name} %f{instr.rs1}, %f{instr.rs2}, %f{instr.rd}"


def _disasm_mem(instr: Instr) -> str:
    op3 = instr.op3
    if op3 in _LOAD_NAMES:
        name = _LOAD_NAMES[op3]
        dest = "%fsr" if name == "ldfsr" else (
            f"%f{instr.rd}" if name in ("ldf", "lddf") else _reg(instr.rd)
        )
        return f"{name} {_addr(instr)}, {dest}"
    if op3 in _STORE_NAMES:
        name = _STORE_NAMES[op3]
        src = "%fsr" if name == "stfsr" else (
            f"%f{instr.rd}" if name in ("stf", "stdf", "stdfq") else _reg(instr.rd)
        )
        return f"{name} {src}, {_addr(instr)}"
    return f"{instr.mnemonic} {_addr(instr)}, {_reg(instr.rd)}"
