"""A two-pass SPARC V8 text assembler.

The heavy-ion campaigns of the paper run three self-checking test programs
(IUTEST, PARANOIA, CNCF).  We rebuild equivalents of those programs from
source text, so the repository carries a small but complete assembler using
(mostly) GNU ``as`` syntax:

* labels (``loop:``), ``!`` or ``//`` comments;
* directives ``.word``, ``.align``, ``.skip``/``.space``, ``.equ``/``.set``,
  ``.org``;
* ``%hi(expr)`` / ``%lo(expr)`` relocations and constant expressions with
  ``+ - * ( )`` over labels and integers;
* the synthetic instructions ``set``, ``mov``, ``cmp``, ``tst``, ``clr``,
  ``nop``, ``not``, ``neg``, ``inc``, ``dec``, ``ret``, ``retl``, ``jmp``,
  ``restore`` (no operands), ``call`` to a register address.

The output :class:`Program` is a relocated word image plus the symbol table.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import AssemblerError
from repro.sparc import encode
from repro.sparc.isa import (
    BRANCH_CONDS,
    CBRANCH_CONDS,
    FBRANCH_CONDS,
    REGISTER_ALIASES,
    TRAP_CONDS,
    Op,
    Op2,
    Op3,
    Op3Mem,
    Opf,
)

_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):")
_SYMBOL_RE = re.compile(r"[A-Za-z_.$][\w.$]*")


@dataclass
class Program:
    """An assembled, relocated program image."""

    base: int
    words: List[int]
    symbols: Dict[str, int] = field(default_factory=dict)
    name: str = "program"
    #: Word offsets emitted by data directives (``.word``, ``.skip``) or
    #: gap padding -- NOT instructions, even when the bit pattern happens
    #: to decode as one (FP constants routinely alias branches).
    data_words: Set[int] = field(default_factory=set)

    @property
    def size(self) -> int:
        """Image size in bytes."""
        return len(self.words) * 4

    @property
    def end(self) -> int:
        return self.base + self.size

    def word_at(self, address: int) -> int:
        """The 32-bit word stored at ``address`` (must be in the image)."""
        offset = address - self.base
        if offset % 4 or not 0 <= offset < self.size:
            raise AssemblerError(f"address {address:#x} outside program image")
        return self.words[offset // 4]

    def to_bytes(self) -> bytes:
        """Big-endian byte image (SPARC is big-endian)."""
        return b"".join(word.to_bytes(4, "big") for word in self.words)

    def address_of(self, symbol: str) -> int:
        try:
            return self.symbols[symbol]
        except KeyError:
            raise AssemblerError(f"undefined symbol {symbol!r}") from None


# --------------------------------------------------------------------------
# Expression evaluation
# --------------------------------------------------------------------------


class _ExprParser:
    """Recursive-descent parser for integer expressions with symbols."""

    def __init__(self, text: str, symbols: Dict[str, int]) -> None:
        self.text = text
        self.pos = 0
        self.symbols = symbols

    def parse(self) -> int:
        value = self._additive()
        self._skip_ws()
        if self.pos != len(self.text):
            raise AssemblerError(f"junk after expression: {self.text[self.pos:]!r}")
        return value

    def _skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def _peek(self) -> str:
        self._skip_ws()
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def _additive(self) -> int:
        value = self._multiplicative()
        while True:
            ch = self._peek()
            if ch == "+":
                self.pos += 1
                value += self._multiplicative()
            elif ch == "-":
                self.pos += 1
                value -= self._multiplicative()
            else:
                return value

    def _multiplicative(self) -> int:
        value = self._unary()
        while True:
            ch = self._peek()
            if ch == "*":
                self.pos += 1
                value *= self._unary()
            elif self.text.startswith("<<", self.pos):
                self.pos += 2
                value <<= self._unary()
            elif self.text.startswith(">>", self.pos):
                self.pos += 2
                value >>= self._unary()
            else:
                return value

    def _unary(self) -> int:
        ch = self._peek()
        if ch == "-":
            self.pos += 1
            return -self._unary()
        if ch == "~":
            self.pos += 1
            return ~self._unary()
        return self._primary()

    def _primary(self) -> int:
        ch = self._peek()
        if ch == "(":
            self.pos += 1
            value = self._additive()
            if self._peek() != ")":
                raise AssemblerError(f"missing ')' in expression {self.text!r}")
            self.pos += 1
            return value
        match = _SYMBOL_RE.match(self.text, self.pos)
        if match and not self.text[self.pos].isdigit():
            name = match.group(0)
            self.pos = match.end()
            if name not in self.symbols:
                raise AssemblerError(f"undefined symbol {name!r}")
            return self.symbols[name]
        num = re.match(r"0[xX][0-9a-fA-F]+|0[bB][01]+|\d+", self.text[self.pos:])
        if not num:
            raise AssemblerError(f"cannot parse expression at {self.text[self.pos:]!r}")
        self.pos += num.end()
        return int(num.group(0), 0)


def _evaluate(expr: str, symbols: Dict[str, int]) -> int:
    return _ExprParser(expr.strip(), symbols).parse()


# --------------------------------------------------------------------------
# Operand model
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class _Operand:
    """A parsed operand: register, f-register, immediate expression,
    memory reference, special register, or %hi/%lo relocation."""

    kind: str  # "reg" | "freg" | "imm" | "mem" | "special" | "hi" | "lo"
    reg: int = 0
    expr: str = ""
    mem_rs1: int = 0
    mem_rs2: Optional[int] = None
    mem_expr: str = ""  # immediate offset expression ("" means 0)


_SPECIAL_REGS = {"psr", "wim", "tbr", "y", "fsr", "asr17"}


def _parse_register(token: str) -> Optional[int]:
    if not token.startswith("%"):
        return None
    name = token[1:].lower()
    return REGISTER_ALIASES.get(name)


def _parse_operand(token: str) -> _Operand:
    token = token.strip()
    if token.startswith("[") and token.endswith("]"):
        return _parse_mem(token[1:-1].strip())
    if token.startswith("%"):
        lowered = token[1:].lower()
        if lowered in _SPECIAL_REGS:
            return _Operand("special", expr=lowered)
        if re.fullmatch(r"f\d{1,2}", lowered):
            freg = int(lowered[1:])
            if freg > 31:
                raise AssemblerError(f"f-register {token} out of range")
            return _Operand("freg", reg=freg)
        reloc = re.fullmatch(r"(hi|lo)\((.+)\)", lowered, re.DOTALL)
        if reloc:
            return _Operand(reloc.group(1), expr=token[len(reloc.group(1)) + 2 : -1])
        reg = _parse_register(token)
        if reg is not None:
            return _Operand("reg", reg=reg)
        raise AssemblerError(f"unknown register {token!r}")
    return _Operand("imm", expr=token)


def _parse_mem(inner: str) -> _Operand:
    """Parse a memory reference: ``reg``, ``reg+reg``, ``reg+expr``,
    ``reg-expr`` or a bare absolute expression."""
    match = re.match(r"(%\w+)\s*([+-])?\s*(.*)$", inner)
    if match and _parse_register(match.group(1)) is not None:
        rs1 = _parse_register(match.group(1))
        sign, rest = match.group(2), match.group(3).strip()
        if not sign or not rest:
            return _Operand("mem", mem_rs1=rs1)
        rs2 = _parse_register(rest)
        if rs2 is not None and sign == "+":
            return _Operand("mem", mem_rs1=rs1, mem_rs2=rs2)
        expr = rest if sign == "+" else f"-({rest})"
        return _Operand("mem", mem_rs1=rs1, mem_expr=expr)
    # Absolute address with %g0 as the base.
    return _Operand("mem", mem_rs1=0, mem_expr=inner)


def _split_operands(text: str) -> List[str]:
    """Split an operand list on commas that are not inside () or []."""
    parts: List[str] = []
    depth = 0
    current = ""
    for ch in text:
        if ch in "([":
            depth += 1
        elif ch in ")]":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append(current.strip())
            current = ""
        else:
            current += ch
    if current.strip():
        parts.append(current.strip())
    return parts


# --------------------------------------------------------------------------
# Mnemonic tables
# --------------------------------------------------------------------------

_ALU_OPS: Dict[str, int] = {
    "add": Op3.ADD,
    "addcc": Op3.ADDCC,
    "addx": Op3.ADDX,
    "addxcc": Op3.ADDXCC,
    "sub": Op3.SUB,
    "subcc": Op3.SUBCC,
    "subx": Op3.SUBX,
    "subxcc": Op3.SUBXCC,
    "and": Op3.AND,
    "andcc": Op3.ANDCC,
    "andn": Op3.ANDN,
    "andncc": Op3.ANDNCC,
    "or": Op3.OR,
    "orcc": Op3.ORCC,
    "orn": Op3.ORN,
    "orncc": Op3.ORNCC,
    "xor": Op3.XOR,
    "xorcc": Op3.XORCC,
    "xnor": Op3.XNOR,
    "xnorcc": Op3.XNORCC,
    "sll": Op3.SLL,
    "srl": Op3.SRL,
    "sra": Op3.SRA,
    "umul": Op3.UMUL,
    "umulcc": Op3.UMULCC,
    "smul": Op3.SMUL,
    "smulcc": Op3.SMULCC,
    "udiv": Op3.UDIV,
    "udivcc": Op3.UDIVCC,
    "sdiv": Op3.SDIV,
    "sdivcc": Op3.SDIVCC,
    "mulscc": Op3.MULSCC,
    "taddcc": Op3.TADDCC,
    "tsubcc": Op3.TSUBCC,
    "taddcctv": Op3.TADDCCTV,
    "tsubcctv": Op3.TSUBCCTV,
    "save": Op3.SAVE,
    "restore": Op3.RESTORE,
    "jmpl": Op3.JMPL,
    "flush": Op3.FLUSH,
}

_LOAD_OPS: Dict[str, int] = {
    "ld": Op3Mem.LD,
    "ldub": Op3Mem.LDUB,
    "lduh": Op3Mem.LDUH,
    "ldsb": Op3Mem.LDSB,
    "ldsh": Op3Mem.LDSH,
    "ldd": Op3Mem.LDD,
    "ldstub": Op3Mem.LDSTUB,
    "swap": Op3Mem.SWAP,
}

_STORE_OPS: Dict[str, int] = {
    "st": Op3Mem.ST,
    "stb": Op3Mem.STB,
    "sth": Op3Mem.STH,
    "std": Op3Mem.STD,
}

_FLOAT_LOAD_OPS = {"ldf": Op3Mem.LDF, "lddf": Op3Mem.LDDF, "ldfsr": Op3Mem.LDFSR}
_FLOAT_STORE_OPS = {"stf": Op3Mem.STF, "stdf": Op3Mem.STDF, "stfsr": Op3Mem.STFSR}

_FP_BINOPS: Dict[str, int] = {
    "fadds": Opf.FADDS,
    "faddd": Opf.FADDD,
    "fsubs": Opf.FSUBS,
    "fsubd": Opf.FSUBD,
    "fmuls": Opf.FMULS,
    "fmuld": Opf.FMULD,
    "fdivs": Opf.FDIVS,
    "fdivd": Opf.FDIVD,
}

_FP_UNOPS: Dict[str, int] = {
    "fmovs": Opf.FMOVS,
    "fnegs": Opf.FNEGS,
    "fabss": Opf.FABSS,
    "fsqrts": Opf.FSQRTS,
    "fsqrtd": Opf.FSQRTD,
    "fitos": Opf.FITOS,
    "fitod": Opf.FITOD,
    "fstoi": Opf.FSTOI,
    "fdtoi": Opf.FDTOI,
    "fstod": Opf.FSTOD,
    "fdtos": Opf.FDTOS,
}

_FP_CMPS: Dict[str, int] = {
    "fcmps": Opf.FCMPS,
    "fcmpd": Opf.FCMPD,
    "fcmpes": Opf.FCMPES,
    "fcmped": Opf.FCMPED,
}

_RD_OPS = {"psr": Op3.RDPSR, "wim": Op3.RDWIM, "tbr": Op3.RDTBR, "y": Op3.RDASR}
_WR_OPS = {"psr": Op3.WRPSR, "wim": Op3.WRWIM, "tbr": Op3.WRTBR, "y": Op3.WRASR}


# --------------------------------------------------------------------------
# The assembler
# --------------------------------------------------------------------------


@dataclass
class _Item:
    """One object produced by pass 1: a fixed-size hole to encode in pass 2."""

    address: int
    size_words: int
    encoder: Callable[[int, Dict[str, int]], List[int]]
    line: int
    source: str
    data: bool = False


class Assembler:
    """Two-pass assembler producing a :class:`Program`.

    Pass 1 parses every line, assigns addresses (all instructions have a
    fixed size, synthetic ``set`` is always two words) and collects labels.
    Pass 2 encodes against the complete symbol table.
    """

    def __init__(self, base: int = 0) -> None:
        self.base = base

    def assemble(self, source: str, *, name: str = "program",
                 symbols: Optional[Dict[str, int]] = None) -> Program:
        items, labels = self._pass1(source, symbols or {})
        table = dict(symbols or {})
        table.update(labels)
        words: List[int] = []
        data_words: Set[int] = set()
        address = self.base
        for item in items:
            if item.address != address:
                # .org / .align created a gap; pad with zeros (unimp).
                gap = (item.address - address) // 4
                data_words.update(range(len(words), len(words) + gap))
                words.extend([0] * gap)
                address = item.address
            try:
                encoded = item.encoder(item.address, table)
            except AssemblerError as exc:
                raise AssemblerError(str(exc), line=item.line, source=item.source) from None
            if len(encoded) != item.size_words:
                raise AssemblerError(
                    f"internal: size mismatch on line {item.line}", line=item.line
                )
            if item.data:
                data_words.update(range(len(words), len(words) + len(encoded)))
            words.extend(word & 0xFFFFFFFF for word in encoded)
            address += 4 * item.size_words
        return Program(self.base, words, table, name=name,
                       data_words=data_words)

    # -- pass 1 ------------------------------------------------------------

    def _pass1(
        self, source: str, predefined: Dict[str, int]
    ) -> Tuple[List[_Item], Dict[str, int]]:
        items: List[_Item] = []
        labels: Dict[str, int] = {}
        equates: Dict[str, int] = dict(predefined)
        address = self.base
        for lineno, raw in enumerate(source.splitlines(), start=1):
            line = _strip_comment(raw).strip()
            while True:
                match = _LABEL_RE.match(line)
                if not match:
                    break
                label = match.group(1)
                if label in labels:
                    raise AssemblerError(f"duplicate label {label!r}", line=lineno)
                labels[label] = address
                line = line[match.end():].strip()
            if not line:
                continue
            mnemonic, _, rest = line.partition(" ")
            mnemonic = mnemonic.lower()
            rest = rest.strip()
            if mnemonic.startswith("."):
                address = self._directive(
                    items, equates, mnemonic, rest, address, lineno, line
                )
                continue
            size, encoder = self._instruction(mnemonic, rest, lineno)
            items.append(_Item(address, size, encoder, lineno, line))
            address += 4 * size
        labels.update(equates)
        return items, labels

    def _directive(
        self,
        items: List[_Item],
        equates: Dict[str, int],
        mnemonic: str,
        rest: str,
        address: int,
        lineno: int,
        source: str,
    ) -> int:
        if mnemonic == ".word":
            exprs = _split_operands(rest)
            if not exprs:
                raise AssemblerError(".word needs at least one value", line=lineno)

            def encode_words(_addr: int, table: Dict[str, int],
                             exprs: Sequence[str] = tuple(exprs)) -> List[int]:
                return [_evaluate(expr, table) & 0xFFFFFFFF for expr in exprs]

            items.append(_Item(address, len(exprs), encode_words, lineno,
                               source, data=True))
            return address + 4 * len(exprs)
        if mnemonic == ".align":
            boundary = _evaluate(rest or "4", equates)
            if boundary <= 0 or boundary % 4:
                raise AssemblerError(f"bad alignment {boundary}", line=lineno)
            aligned = (address + boundary - 1) // boundary * boundary
            return aligned
        if mnemonic in (".skip", ".space"):
            count = _evaluate(rest, equates)
            if count < 0 or count % 4:
                raise AssemblerError(".skip must be a multiple of 4 bytes", line=lineno)

            def encode_skip(_addr: int, _table: Dict[str, int],
                            words: int = count // 4) -> List[int]:
                return [0] * words

            items.append(_Item(address, count // 4, encode_skip, lineno,
                               source, data=True))
            return address + count
        if mnemonic in (".equ", ".set"):
            name_part, _, value_part = rest.partition(",")
            name = name_part.strip()
            if not name or not value_part.strip():
                raise AssemblerError(f"{mnemonic} needs 'name, value'", line=lineno)
            equates[name] = _evaluate(value_part, equates)
            return address
        if mnemonic == ".org":
            target = _evaluate(rest, equates)
            if target < address:
                raise AssemblerError(".org cannot move backwards", line=lineno)
            if (target - self.base) % 4:
                raise AssemblerError(".org target not word aligned", line=lineno)
            return target
        raise AssemblerError(f"unknown directive {mnemonic!r}", line=lineno)

    # -- instruction parsing -------------------------------------------------

    def _instruction(
        self, mnemonic: str, rest: str, lineno: int
    ) -> Tuple[int, Callable[[int, Dict[str, int]], List[int]]]:
        annul = False
        if mnemonic.endswith(",a"):
            mnemonic, annul = mnemonic[:-2], True
        operands = _split_operands(rest) if rest else []

        if mnemonic == "set":
            return 2, _make_set(operands, lineno)
        if mnemonic in BRANCH_CONDS:
            cond = BRANCH_CONDS[mnemonic]
            return 1, _make_branch(Op2.BICC, cond, annul, operands, lineno)
        if mnemonic in FBRANCH_CONDS:
            cond = FBRANCH_CONDS[mnemonic]
            return 1, _make_branch(Op2.FBFCC, cond, annul, operands, lineno)
        if mnemonic in CBRANCH_CONDS:
            cond = CBRANCH_CONDS[mnemonic]
            return 1, _make_branch(Op2.CBCCC, cond, annul, operands, lineno)
        if mnemonic in TRAP_CONDS:
            return 1, _make_ticc(TRAP_CONDS[mnemonic], operands, lineno)
        if mnemonic == "call":
            return 1, _make_call(operands, lineno)
        if mnemonic == "sethi":
            return 1, _make_sethi(operands, lineno)
        if mnemonic in _ALU_OPS:
            return 1, _make_alu(mnemonic, operands, lineno)
        if mnemonic in _LOAD_OPS or mnemonic in _FLOAT_LOAD_OPS:
            return 1, _make_load(mnemonic, operands, lineno)
        if mnemonic in _STORE_OPS or mnemonic in _FLOAT_STORE_OPS:
            return 1, _make_store(mnemonic, operands, lineno)
        if mnemonic in _FP_BINOPS or mnemonic in _FP_UNOPS or mnemonic in _FP_CMPS:
            return 1, _make_fpop(mnemonic, operands, lineno)
        if mnemonic == "rd":
            return 1, _make_rd(operands, lineno)
        if mnemonic == "wr":
            return 1, _make_wr(operands, lineno)
        if mnemonic == "rett":
            return 1, _make_rett(operands, lineno)
        if mnemonic == "unimp":
            const = operands[0] if operands else "0"
            return 1, lambda _a, table: [encode.fmt2_unimp(_evaluate(const, table))]
        maker = _SYNTHETICS.get(mnemonic)
        if maker is not None:
            return 1, maker(operands, lineno)
        raise AssemblerError(f"unknown mnemonic {mnemonic!r}", line=lineno)


def _strip_comment(line: str) -> str:
    for marker in ("!", "//", ";"):
        index = line.find(marker)
        if index >= 0:
            line = line[:index]
    return line


def _expect(operands: Sequence[_Operand], kinds: str, lineno: int, what: str) -> None:
    actual = "".join(_KIND_CODE[operand.kind] for operand in operands)
    if actual != kinds:
        raise AssemblerError(f"bad operands for {what}", line=lineno)


_KIND_CODE = {"reg": "r", "freg": "f", "imm": "i", "mem": "m", "special": "s",
              "hi": "h", "lo": "l"}


def _reg_or_simm(
    operand: _Operand, address: int, table: Dict[str, int]
) -> Tuple[Optional[int], int]:
    """Return (rs2, 0) for a register operand or (None, simm13 value)."""
    if operand.kind == "reg":
        return operand.reg, 0
    if operand.kind == "lo":
        return None, _evaluate(operand.expr, table) & 0x3FF
    if operand.kind == "hi":
        raise AssemblerError("%hi() is only valid with sethi/set")
    return None, _evaluate(operand.expr, table)


def _encode_alu(op3: int, rd: int, rs1: int, operand: _Operand,
                address: int, table: Dict[str, int]) -> int:
    rs2, simm = _reg_or_simm(operand, address, table)
    if rs2 is not None:
        return encode.fmt3_reg(Op.ARITH, op3, rd, rs1, rs2)
    return encode.fmt3_imm(Op.ARITH, op3, rd, rs1, simm)


def _make_alu(mnemonic: str, tokens: Sequence[str], lineno: int):
    op3 = _ALU_OPS[mnemonic]
    operands = [_parse_operand(token) for token in tokens]
    if mnemonic == "restore" and not operands:
        operands = [_Operand("reg", reg=0), _Operand("reg", reg=0), _Operand("reg", reg=0)]
    if mnemonic == "save" and not operands:
        operands = [_Operand("reg", reg=0), _Operand("reg", reg=0), _Operand("reg", reg=0)]
    if mnemonic == "flush":
        if len(operands) == 1 and operands[0].kind == "mem":
            mem = operands[0]

            def encode_flush(address: int, table: Dict[str, int]) -> List[int]:
                if mem.mem_rs2 is not None:
                    return [encode.fmt3_reg(Op.ARITH, op3, 0, mem.mem_rs1, mem.mem_rs2)]
                offset = _evaluate(mem.mem_expr, table) if mem.mem_expr else 0
                return [encode.fmt3_imm(Op.ARITH, op3, 0, mem.mem_rs1, offset)]

            return encode_flush
        raise AssemblerError("flush needs a [address] operand", line=lineno)
    if mnemonic == "jmpl":
        if len(operands) != 2 or operands[0].kind != "mem" or operands[1].kind != "reg":
            raise AssemblerError("jmpl needs [address], reg", line=lineno)
        mem, rd_op = operands

        def encode_jmpl(address: int, table: Dict[str, int]) -> List[int]:
            if mem.mem_rs2 is not None:
                return [encode.fmt3_reg(Op.ARITH, op3, rd_op.reg, mem.mem_rs1, mem.mem_rs2)]
            offset = _evaluate(mem.mem_expr, table) if mem.mem_expr else 0
            return [encode.fmt3_imm(Op.ARITH, op3, rd_op.reg, mem.mem_rs1, offset)]

        return encode_jmpl
    if len(operands) != 3 or operands[0].kind != "reg" or operands[2].kind != "reg":
        raise AssemblerError(f"bad operands for {mnemonic}", line=lineno)
    rs1_op, src2, rd_op = operands

    def encode_op(address: int, table: Dict[str, int]) -> List[int]:
        return [_encode_alu(op3, rd_op.reg, rs1_op.reg, src2, address, table)]

    return encode_op


def _make_branch(op2: int, cond: int, annul: bool, tokens: Sequence[str], lineno: int):
    if len(tokens) != 1:
        raise AssemblerError("branch needs one target", line=lineno)
    target = tokens[0]

    def encode_branch(address: int, table: Dict[str, int]) -> List[int]:
        dest = _evaluate(target, table)
        return [encode.fmt2_branch(op2, cond, annul, dest - address)]

    return encode_branch


def _make_call(tokens: Sequence[str], lineno: int):
    if len(tokens) != 1:
        raise AssemblerError("call needs one target", line=lineno)
    operand = _parse_operand(tokens[0])
    if operand.kind == "mem":
        # call to a register address: jmpl [addr], %o7

        def encode_call_reg(address: int, table: Dict[str, int]) -> List[int]:
            if operand.mem_rs2 is not None:
                return [encode.fmt3_reg(Op.ARITH, Op3.JMPL, 15, operand.mem_rs1,
                                        operand.mem_rs2)]
            offset = _evaluate(operand.mem_expr, table) if operand.mem_expr else 0
            return [encode.fmt3_imm(Op.ARITH, Op3.JMPL, 15, operand.mem_rs1, offset)]

        return encode_call_reg
    target = tokens[0]

    def encode_call(address: int, table: Dict[str, int]) -> List[int]:
        dest = _evaluate(target, table)
        return [encode.fmt1_call(dest - address)]

    return encode_call


def _make_sethi(tokens: Sequence[str], lineno: int):
    if len(tokens) != 2:
        raise AssemblerError("sethi needs %hi(value), reg", line=lineno)
    value_op = _parse_operand(tokens[0])
    rd_op = _parse_operand(tokens[1])
    if rd_op.kind != "reg":
        raise AssemblerError("sethi destination must be a register", line=lineno)

    def encode_sethi(address: int, table: Dict[str, int]) -> List[int]:
        if value_op.kind == "hi":
            value = _evaluate(value_op.expr, table)
        elif value_op.kind == "imm":
            value = _evaluate(value_op.expr, table) << 10
        else:
            raise AssemblerError("sethi needs %hi(value) or an immediate")
        return [encode.fmt2_sethi(rd_op.reg, value)]

    return encode_sethi


def _make_set(tokens: Sequence[str], lineno: int):
    if len(tokens) != 2:
        raise AssemblerError("set needs value, reg", line=lineno)
    expr, rd_token = tokens
    rd_op = _parse_operand(rd_token)
    if rd_op.kind != "reg":
        raise AssemblerError("set destination must be a register", line=lineno)

    def encode_set(address: int, table: Dict[str, int]) -> List[int]:
        value = _evaluate(expr, table) & 0xFFFFFFFF
        return [
            encode.fmt2_sethi(rd_op.reg, value),
            encode.fmt3_imm(Op.ARITH, Op3.OR, rd_op.reg, rd_op.reg, value & 0x3FF),
        ]

    return encode_set


def _make_load(mnemonic: str, tokens: Sequence[str], lineno: int):
    float_dest = mnemonic in _FLOAT_LOAD_OPS
    op3 = _FLOAT_LOAD_OPS[mnemonic] if float_dest else _LOAD_OPS[mnemonic]
    if len(tokens) != 2:
        raise AssemblerError(f"{mnemonic} needs [address], reg", line=lineno)
    mem = _parse_operand(tokens[0])
    dest = _parse_operand(tokens[1])
    if mem.kind != "mem":
        raise AssemblerError(f"{mnemonic} source must be a memory reference", line=lineno)
    expected = "freg" if float_dest and mnemonic != "ldfsr" else "reg"
    if mnemonic == "ldfsr":
        expected = "special"
    if dest.kind != expected:
        raise AssemblerError(f"bad destination for {mnemonic}", line=lineno)
    rd = dest.reg

    def encode_load(address: int, table: Dict[str, int]) -> List[int]:
        if mem.mem_rs2 is not None:
            return [encode.fmt3_reg(Op.MEM, op3, rd, mem.mem_rs1, mem.mem_rs2)]
        offset = _evaluate(mem.mem_expr, table) if mem.mem_expr else 0
        return [encode.fmt3_imm(Op.MEM, op3, rd, mem.mem_rs1, offset)]

    return encode_load


def _make_store(mnemonic: str, tokens: Sequence[str], lineno: int):
    float_src = mnemonic in _FLOAT_STORE_OPS
    op3 = _FLOAT_STORE_OPS[mnemonic] if float_src else _STORE_OPS[mnemonic]
    if len(tokens) != 2:
        raise AssemblerError(f"{mnemonic} needs reg, [address]", line=lineno)
    src = _parse_operand(tokens[0])
    mem = _parse_operand(tokens[1])
    if mem.kind != "mem":
        raise AssemblerError(f"{mnemonic} target must be a memory reference", line=lineno)
    expected = "freg" if float_src and mnemonic != "stfsr" else "reg"
    if mnemonic == "stfsr":
        expected = "special"
    if src.kind != expected:
        raise AssemblerError(f"bad source for {mnemonic}", line=lineno)
    rd = src.reg

    def encode_store(address: int, table: Dict[str, int]) -> List[int]:
        if mem.mem_rs2 is not None:
            return [encode.fmt3_reg(Op.MEM, op3, rd, mem.mem_rs1, mem.mem_rs2)]
        offset = _evaluate(mem.mem_expr, table) if mem.mem_expr else 0
        return [encode.fmt3_imm(Op.MEM, op3, rd, mem.mem_rs1, offset)]

    return encode_store


def _make_fpop(mnemonic: str, tokens: Sequence[str], lineno: int):
    operands = [_parse_operand(token) for token in tokens]
    if mnemonic in _FP_BINOPS:
        _expect(operands, "fff", lineno, mnemonic)
        opf = _FP_BINOPS[mnemonic]
        rs1, rs2, rd = operands
        return lambda _a, _t: [encode.fmt3_fp(Op3.FPOP1, opf, rd.reg, rs1.reg, rs2.reg)]
    if mnemonic in _FP_UNOPS:
        _expect(operands, "ff", lineno, mnemonic)
        opf = _FP_UNOPS[mnemonic]
        rs2, rd = operands
        return lambda _a, _t: [encode.fmt3_fp(Op3.FPOP1, opf, rd.reg, 0, rs2.reg)]
    _expect(operands, "ff", lineno, mnemonic)
    opf = _FP_CMPS[mnemonic]
    rs1, rs2 = operands
    return lambda _a, _t: [encode.fmt3_fp(Op3.FPOP2, opf, 0, rs1.reg, rs2.reg)]


def _make_rd(tokens: Sequence[str], lineno: int):
    if len(tokens) != 2:
        raise AssemblerError("rd needs %special, reg", line=lineno)
    special = _parse_operand(tokens[0])
    rd_op = _parse_operand(tokens[1])
    if special.kind != "special" or rd_op.kind != "reg":
        raise AssemblerError("rd needs %special, reg", line=lineno)
    op3 = _RD_OPS.get(special.expr)
    if op3 is None:
        raise AssemblerError(f"cannot rd %{special.expr}", line=lineno)
    rs1 = 17 if special.expr == "asr17" else 0
    return lambda _a, _t: [encode.fmt3_reg(Op.ARITH, op3, rd_op.reg, rs1, 0)]


def _make_wr(tokens: Sequence[str], lineno: int):
    if len(tokens) == 2:
        tokens = [tokens[0], "%g0", tokens[1]]
    if len(tokens) != 3:
        raise AssemblerError("wr needs reg, reg_or_imm, %special", line=lineno)
    rs1_op = _parse_operand(tokens[0])
    src2 = _parse_operand(tokens[1])
    special = _parse_operand(tokens[2])
    if rs1_op.kind != "reg" or special.kind != "special":
        raise AssemblerError("wr needs reg, reg_or_imm, %special", line=lineno)
    op3 = _WR_OPS.get(special.expr)
    if op3 is None:
        raise AssemblerError(f"cannot wr %{special.expr}", line=lineno)

    def encode_wr(address: int, table: Dict[str, int]) -> List[int]:
        return [_encode_alu(op3, 0, rs1_op.reg, src2, address, table)]

    return encode_wr


def _make_rett(tokens: Sequence[str], lineno: int):
    if len(tokens) != 1:
        raise AssemblerError("rett needs [address]", line=lineno)
    mem = _parse_operand(tokens[0])
    if mem.kind != "mem":
        raise AssemblerError("rett needs [address]", line=lineno)

    def encode_rett(address: int, table: Dict[str, int]) -> List[int]:
        if mem.mem_rs2 is not None:
            return [encode.fmt3_reg(Op.ARITH, Op3.RETT, 0, mem.mem_rs1, mem.mem_rs2)]
        offset = _evaluate(mem.mem_expr, table) if mem.mem_expr else 0
        return [encode.fmt3_imm(Op.ARITH, Op3.RETT, 0, mem.mem_rs1, offset)]

    return encode_rett


def _make_ticc(cond: int, tokens: Sequence[str], lineno: int):
    if len(tokens) != 1:
        raise AssemblerError("trap needs one software trap number", line=lineno)
    expr = tokens[0]

    def encode_ticc(address: int, table: Dict[str, int]) -> List[int]:
        value = _evaluate(expr, table)
        word = (Op.ARITH << 30) | (cond << 25) | (Op3.TICC << 19)
        word |= 1 << 13  # immediate form
        word |= value & 0x7F
        return [word]

    return encode_ticc


# -- simple synthetic instructions ------------------------------------------


def _simple_synthetic(build: Callable[[Sequence[_Operand], int, Dict[str, int]], int]):
    def factory(tokens: Sequence[str], lineno: int):
        operands = [_parse_operand(token) for token in tokens]

        def encoder(address: int, table: Dict[str, int]) -> List[int]:
            return [build(operands, address, table)]

        return encoder

    return factory


def _syn_nop(operands, address, table):
    return encode.fmt2_sethi(0, 0)


def _syn_mov(operands, address, table):
    if len(operands) != 2:
        raise AssemblerError("mov needs source, destination")
    src, dst = operands
    if dst.kind != "reg":
        raise AssemblerError("mov destination must be a register")
    return _encode_alu(Op3.OR, dst.reg, 0, src, address, table)


def _syn_cmp(operands, address, table):
    if len(operands) != 2 or operands[0].kind != "reg":
        raise AssemblerError("cmp needs reg, reg_or_imm")
    return _encode_alu(Op3.SUBCC, 0, operands[0].reg, operands[1], address, table)


def _syn_tst(operands, address, table):
    if len(operands) != 1 or operands[0].kind != "reg":
        raise AssemblerError("tst needs a register")
    return encode.fmt3_reg(Op.ARITH, Op3.ORCC, 0, 0, operands[0].reg)


def _syn_clr(operands, address, table):
    if len(operands) != 1 or operands[0].kind != "reg":
        raise AssemblerError("clr needs a register")
    return encode.fmt3_reg(Op.ARITH, Op3.OR, operands[0].reg, 0, 0)


def _syn_not(operands, address, table):
    if not operands or operands[0].kind != "reg":
        raise AssemblerError("not needs a register")
    rs = operands[0].reg
    rd = operands[1].reg if len(operands) > 1 else rs
    return encode.fmt3_reg(Op.ARITH, Op3.XNOR, rd, rs, 0)


def _syn_neg(operands, address, table):
    if not operands or operands[0].kind != "reg":
        raise AssemblerError("neg needs a register")
    rs = operands[0].reg
    rd = operands[1].reg if len(operands) > 1 else rs
    return encode.fmt3_reg(Op.ARITH, Op3.SUB, rd, 0, rs)


def _syn_inc(operands, address, table):
    if not operands or operands[0].kind != "reg":
        raise AssemblerError("inc needs a register")
    amount = 1
    if len(operands) > 1:
        amount = _evaluate(operands[1].expr, table)
    return encode.fmt3_imm(Op.ARITH, Op3.ADD, operands[0].reg, operands[0].reg, amount)


def _syn_dec(operands, address, table):
    if not operands or operands[0].kind != "reg":
        raise AssemblerError("dec needs a register")
    amount = 1
    if len(operands) > 1:
        amount = _evaluate(operands[1].expr, table)
    return encode.fmt3_imm(Op.ARITH, Op3.SUB, operands[0].reg, operands[0].reg, amount)


def _syn_ret(operands, address, table):
    return encode.fmt3_imm(Op.ARITH, Op3.JMPL, 0, 31, 8)  # jmpl %i7+8, %g0


def _syn_retl(operands, address, table):
    return encode.fmt3_imm(Op.ARITH, Op3.JMPL, 0, 15, 8)  # jmpl %o7+8, %g0


def _syn_jmp(operands, address, table):
    if len(operands) != 1 or operands[0].kind != "mem":
        raise AssemblerError("jmp needs [address]")
    mem = operands[0]
    if mem.mem_rs2 is not None:
        return encode.fmt3_reg(Op.ARITH, Op3.JMPL, 0, mem.mem_rs1, mem.mem_rs2)
    offset = _evaluate(mem.mem_expr, table) if mem.mem_expr else 0
    return encode.fmt3_imm(Op.ARITH, Op3.JMPL, 0, mem.mem_rs1, offset)


_SYNTHETICS = {
    "nop": _simple_synthetic(_syn_nop),
    "mov": _simple_synthetic(_syn_mov),
    "cmp": _simple_synthetic(_syn_cmp),
    "tst": _simple_synthetic(_syn_tst),
    "clr": _simple_synthetic(_syn_clr),
    "not": _simple_synthetic(_syn_not),
    "neg": _simple_synthetic(_syn_neg),
    "inc": _simple_synthetic(_syn_inc),
    "dec": _simple_synthetic(_syn_dec),
    "ret": _simple_synthetic(_syn_ret),
    "retl": _simple_synthetic(_syn_retl),
    "jmp": _simple_synthetic(_syn_jmp),
}


def assemble(source: str, base: int = 0x40000000, *, name: str = "program",
             symbols: Optional[Dict[str, int]] = None) -> Program:
    """Assemble ``source`` at ``base`` and return the :class:`Program`."""
    return Assembler(base).assemble(source, name=name, symbols=symbols)
