"""Instruction encoders: build 32-bit SPARC V8 instruction words.

These are the primitives under the text assembler; they are also handy in
tests that need a single instruction without assembling source text.
"""

from __future__ import annotations

from repro.errors import AssemblerError
from repro.sparc.isa import Op, Op2


def _check_reg(value: int, what: str) -> int:
    if not 0 <= value <= 31:
        raise AssemblerError(f"{what} {value} out of range 0..31")
    return value


def _check_simm13(value: int) -> int:
    if not -4096 <= value <= 4095:
        raise AssemblerError(f"immediate {value} does not fit in simm13")
    return value & 0x1FFF


def fmt1_call(disp_bytes: int) -> int:
    """CALL with a byte displacement (must be word aligned)."""
    if disp_bytes % 4:
        raise AssemblerError(f"call displacement {disp_bytes} not word aligned")
    disp30 = (disp_bytes // 4) & 0x3FFFFFFF
    return (Op.CALL << 30) | disp30


def fmt2_sethi(rd: int, value: int) -> int:
    """SETHI %hi(value), rd -- stores bits 31:10 of ``value``."""
    _check_reg(rd, "rd")
    imm22 = (value >> 10) & 0x3FFFFF
    return (Op.FORMAT2 << 30) | (rd << 25) | (Op2.SETHI << 22) | imm22


def fmt2_branch(op2: int, cond: int, annul: bool, disp_bytes: int) -> int:
    """Bicc / FBfcc / CBccc with a byte displacement."""
    if disp_bytes % 4:
        raise AssemblerError(f"branch displacement {disp_bytes} not word aligned")
    disp22 = disp_bytes // 4
    if not -(1 << 21) <= disp22 < (1 << 21):
        raise AssemblerError(f"branch displacement {disp_bytes} does not fit in disp22")
    word = (Op.FORMAT2 << 30) | (int(annul) << 29) | ((cond & 0xF) << 25)
    word |= (op2 & 7) << 22
    word |= disp22 & 0x3FFFFF
    return word


def fmt2_unimp(const22: int = 0) -> int:
    return (Op.FORMAT2 << 30) | (Op2.UNIMP << 22) | (const22 & 0x3FFFFF)


def fmt3_reg(op: int, op3: int, rd: int, rs1: int, rs2: int, asi: int = 0) -> int:
    """Format 3 with a register second operand (i = 0)."""
    _check_reg(rd, "rd")
    _check_reg(rs1, "rs1")
    _check_reg(rs2, "rs2")
    word = (op << 30) | (rd << 25) | ((op3 & 0x3F) << 19) | (rs1 << 14)
    word |= (asi & 0xFF) << 5
    word |= rs2
    return word


def fmt3_imm(op: int, op3: int, rd: int, rs1: int, simm13: int) -> int:
    """Format 3 with a signed 13-bit immediate (i = 1)."""
    _check_reg(rd, "rd")
    _check_reg(rs1, "rs1")
    word = (op << 30) | (rd << 25) | ((op3 & 0x3F) << 19) | (rs1 << 14)
    word |= 1 << 13
    word |= _check_simm13(simm13)
    return word


def fmt3_fp(op3: int, opf: int, rd: int, rs1: int, rs2: int) -> int:
    """FPop1 / FPop2 format."""
    _check_reg(rd, "rd (f-register)")
    _check_reg(rs1, "rs1 (f-register)")
    _check_reg(rs2, "rs2 (f-register)")
    word = (Op.ARITH << 30) | (rd << 25) | ((op3 & 0x3F) << 19) | (rs1 << 14)
    word |= (opf & 0x1FF) << 5
    word |= rs2
    return word
