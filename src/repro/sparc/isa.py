"""SPARC V8 encoding constants: formats, opcodes, condition codes, registers.

Field layout (SPARC V8 manual, section 5):

* Format 1 (``op`` = 1): ``CALL`` with a 30-bit word displacement.
* Format 2 (``op`` = 0): ``SETHI`` and branches, selected by ``op2``.
* Format 3 (``op`` = 2 or 3): arithmetic/control and memory, selected by
  ``op3``, with either a register (``i`` = 0) or a 13-bit signed immediate
  (``i`` = 1) second operand.
"""

from __future__ import annotations

import enum


class Op(enum.IntEnum):
    """Top-level 2-bit opcode field (bits 31:30)."""

    FORMAT2 = 0  # SETHI / branches / UNIMP
    CALL = 1
    ARITH = 2  # format 3: arithmetic, logical, shift, control
    MEM = 3  # format 3: loads and stores


class Op2(enum.IntEnum):
    """``op2`` field of format 2 (bits 24:22)."""

    UNIMP = 0
    BICC = 2
    SETHI = 4
    FBFCC = 6
    CBCCC = 7


class Op3(enum.IntEnum):
    """``op3`` field of format 3 for ``op`` = 2 (arithmetic/control)."""

    ADD = 0x00
    AND = 0x01
    OR = 0x02
    XOR = 0x03
    SUB = 0x04
    ANDN = 0x05
    ORN = 0x06
    XNOR = 0x07
    ADDX = 0x08
    UMUL = 0x0A
    SMUL = 0x0B
    SUBX = 0x0C
    UDIV = 0x0E
    SDIV = 0x0F
    ADDCC = 0x10
    ANDCC = 0x11
    ORCC = 0x12
    XORCC = 0x13
    SUBCC = 0x14
    ANDNCC = 0x15
    ORNCC = 0x16
    XNORCC = 0x17
    ADDXCC = 0x18
    UMULCC = 0x1A
    SMULCC = 0x1B
    SUBXCC = 0x1C
    UDIVCC = 0x1E
    SDIVCC = 0x1F
    TADDCC = 0x20
    TSUBCC = 0x21
    TADDCCTV = 0x22
    TSUBCCTV = 0x23
    MULSCC = 0x24
    SLL = 0x25
    SRL = 0x26
    SRA = 0x27
    RDASR = 0x28  # rs1 = 0 encodes RDY
    RDPSR = 0x29
    RDWIM = 0x2A
    RDTBR = 0x2B
    WRASR = 0x30  # rd = 0 encodes WRY
    WRPSR = 0x31
    WRWIM = 0x32
    WRTBR = 0x33
    FPOP1 = 0x34
    FPOP2 = 0x35
    CPOP1 = 0x36
    CPOP2 = 0x37
    JMPL = 0x38
    RETT = 0x39
    TICC = 0x3A
    FLUSH = 0x3B
    SAVE = 0x3C
    RESTORE = 0x3D


class Op3Mem(enum.IntEnum):
    """``op3`` field of format 3 for ``op`` = 3 (loads and stores)."""

    LD = 0x00
    LDUB = 0x01
    LDUH = 0x02
    LDD = 0x03
    ST = 0x04
    STB = 0x05
    STH = 0x06
    STD = 0x07
    LDSB = 0x09
    LDSH = 0x0A
    LDSTUB = 0x0D
    SWAP = 0x0F
    LDA = 0x10
    LDUBA = 0x11
    LDUHA = 0x12
    LDDA = 0x13
    STA = 0x14
    STBA = 0x15
    STHA = 0x16
    STDA = 0x17
    LDSBA = 0x19
    LDSHA = 0x1A
    LDSTUBA = 0x1D
    SWAPA = 0x1F
    LDF = 0x20
    LDFSR = 0x21
    LDDF = 0x23
    STF = 0x24
    STFSR = 0x25
    STDFQ = 0x26
    STDF = 0x27


class Opf(enum.IntEnum):
    """``opf`` field of the floating-point operate formats (bits 13:5)."""

    FMOVS = 0x01
    FNEGS = 0x05
    FABSS = 0x09
    FSQRTS = 0x29
    FSQRTD = 0x2A
    FADDS = 0x41
    FADDD = 0x42
    FSUBS = 0x45
    FSUBD = 0x46
    FMULS = 0x49
    FMULD = 0x4A
    FDIVS = 0x4D
    FDIVD = 0x4E
    FITOS = 0xC4
    FDTOS = 0xC6
    FITOD = 0xC8
    FSTOD = 0xC9
    FSTOI = 0xD1
    FDTOI = 0xD2
    FCMPS = 0x51
    FCMPD = 0x52
    FCMPES = 0x55
    FCMPED = 0x56


class Cond(enum.IntEnum):
    """Integer condition codes for Bicc / Ticc (``cond`` field)."""

    N = 0  # never
    E = 1  # equal (Z)
    LE = 2  # less or equal
    L = 3  # less
    LEU = 4  # less or equal unsigned
    CS = 5  # carry set (less unsigned)
    NEG = 6
    VS = 7  # overflow set
    A = 8  # always
    NE = 9
    G = 10
    GE = 11
    GU = 12
    CC = 13  # carry clear (greater or equal unsigned)
    POS = 14
    VC = 15


class FCond(enum.IntEnum):
    """Floating-point condition codes for FBfcc."""

    N = 0
    NE = 1  # L or G or U
    LG = 2
    UL = 3
    L = 4
    UG = 5
    G = 6
    U = 7
    A = 8
    E = 9
    UE = 10
    GE = 11
    UGE = 12
    LE = 13
    ULE = 14
    O = 15  # noqa: E741 - SPARC mnemonic "ordered"


class Reg(enum.IntEnum):
    """Conventional integer register names (current window view)."""

    G0 = 0
    G1 = 1
    G2 = 2
    G3 = 3
    G4 = 4
    G5 = 5
    G6 = 6
    G7 = 7
    O0 = 8
    O1 = 9
    O2 = 10
    O3 = 11
    O4 = 12
    O5 = 13
    SP = 14  # %o6
    O7 = 15
    L0 = 16
    L1 = 17
    L2 = 18
    L3 = 19
    L4 = 20
    L5 = 21
    L6 = 22
    L7 = 23
    I0 = 24
    I1 = 25
    I2 = 26
    I3 = 27
    I4 = 28
    I5 = 29
    FP = 30  # %i6
    I7 = 31


#: Register-name aliases accepted by the assembler, mapping to window-relative
#: register numbers 0..31.
REGISTER_ALIASES = {
    **{f"g{i}": i for i in range(8)},
    **{f"o{i}": 8 + i for i in range(8)},
    **{f"l{i}": 16 + i for i in range(8)},
    **{f"i{i}": 24 + i for i in range(8)},
    **{f"r{i}": i for i in range(32)},
    "sp": 14,
    "fp": 30,
}

#: Integer branch mnemonic -> condition field value.
BRANCH_CONDS = {
    "bn": Cond.N,
    "be": Cond.E,
    "bz": Cond.E,
    "ble": Cond.LE,
    "bl": Cond.L,
    "bleu": Cond.LEU,
    "bcs": Cond.CS,
    "blu": Cond.CS,
    "bneg": Cond.NEG,
    "bvs": Cond.VS,
    "ba": Cond.A,
    "b": Cond.A,
    "bne": Cond.NE,
    "bnz": Cond.NE,
    "bg": Cond.G,
    "bge": Cond.GE,
    "bgu": Cond.GU,
    "bcc": Cond.CC,
    "bgeu": Cond.CC,
    "bpos": Cond.POS,
    "bvc": Cond.VC,
}

#: Trap mnemonic -> condition field value (Ticc).
TRAP_CONDS = {
    "tn": Cond.N,
    "te": Cond.E,
    "tle": Cond.LE,
    "tl": Cond.L,
    "tleu": Cond.LEU,
    "tcs": Cond.CS,
    "tneg": Cond.NEG,
    "tvs": Cond.VS,
    "ta": Cond.A,
    "tne": Cond.NE,
    "tg": Cond.G,
    "tge": Cond.GE,
    "tgu": Cond.GU,
    "tcc": Cond.CC,
    "tpos": Cond.POS,
    "tvc": Cond.VC,
}

#: Floating branch mnemonic -> condition field value (FBfcc).
FBRANCH_CONDS = {
    "fbn": FCond.N,
    "fbne": FCond.NE,
    "fblg": FCond.LG,
    "fbul": FCond.UL,
    "fbl": FCond.L,
    "fbug": FCond.UG,
    "fbg": FCond.G,
    "fbu": FCond.U,
    "fba": FCond.A,
    "fbe": FCond.E,
    "fbue": FCond.UE,
    "fbge": FCond.GE,
    "fbuge": FCond.UGE,
    "fble": FCond.LE,
    "fbule": FCond.ULE,
    "fbo": FCond.O,
}

#: Co-processor branch mnemonic -> condition field value (CBccc).
#:
#: LEON attaches no co-processor, so any *executed* CBccc traps
#: (cp_disabled) -- but the words still decode, and data constants can
#: alias them (e.g. the float ``1.5`` is ``cb012,a``), so the
#: assembler/disassembler pair must round-trip them faithfully.
CBRANCH_CONDS = {
    "cbn": 0,
    "cb123": 1,
    "cb12": 2,
    "cb13": 3,
    "cb1": 4,
    "cb23": 5,
    "cb2": 6,
    "cb3": 7,
    "cba": 8,
    "cb0": 9,
    "cb03": 10,
    "cb02": 11,
    "cb023": 12,
    "cb01": 13,
    "cb013": 14,
    "cb012": 15,
}


def sign_extend(value: int, bits: int) -> int:
    """Interpret the low ``bits`` of ``value`` as a two's-complement number."""
    value &= (1 << bits) - 1
    if value & (1 << (bits - 1)):
        value -= 1 << bits
    return value


def to_u32(value: int) -> int:
    """Truncate a Python integer to an unsigned 32-bit word."""
    return value & 0xFFFFFFFF


def to_s32(value: int) -> int:
    """Interpret a 32-bit word as a signed integer."""
    return sign_extend(value, 32)
