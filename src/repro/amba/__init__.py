"""AMBA-2.0 on-chip buses (paper section 3).

A high-speed AHB bus connects the caches to the memory controller; a
low-speed APB bus, reached through an AHB/APB bridge, carries the simple
peripherals (timers, UARTs, interrupt controller, I/O port).
"""

from repro.amba.ahb import AhbBus, AhbMaster, AhbSlave, BusResult, TransferSize
from repro.amba.apb import ApbBridge, ApbSlave

__all__ = [
    "AhbBus",
    "AhbMaster",
    "AhbSlave",
    "ApbBridge",
    "ApbSlave",
    "BusResult",
    "TransferSize",
]
