"""AMBA APB: the low-speed peripheral bus behind the AHB/APB bridge.

Peripherals expose word-wide registers at word-aligned offsets.  The bridge
is itself an AHB slave; every APB access costs the bridge-crossing penalty
on top of the single APB cycle, which is why nobody puts caches on APB.
"""

from __future__ import annotations

import abc
from typing import List, Optional

from repro.amba.ahb import AhbSlave, BusResult, TransferSize
from repro.errors import ConfigurationError

#: Extra AHB cycles consumed crossing the bridge (setup + enable phases).
BRIDGE_PENALTY_CYCLES = 2


class ApbSlave(abc.ABC):
    """One peripheral on the APB bus, mapped at ``[offset, offset + size)``
    relative to the bridge base address."""

    def __init__(self, name: str, offset: int, size: int) -> None:
        if size <= 0 or size % 4:
            raise ConfigurationError(f"APB slave {name!r} needs a word-multiple size")
        if offset % 4:
            raise ConfigurationError(f"APB slave {name!r} offset not word aligned")
        self.name = name
        self.offset = offset
        self.size = size

    def covers(self, offset: int) -> bool:
        return self.offset <= offset < self.offset + self.size

    @abc.abstractmethod
    def apb_read(self, offset: int) -> int:
        """Read the 32-bit register at ``offset`` (relative to the slave)."""

    @abc.abstractmethod
    def apb_write(self, offset: int, value: int) -> None:
        """Write the 32-bit register at ``offset`` (relative to the slave)."""

    def tick(self, cycles: int) -> None:
        """Advance peripheral-internal time (timers, UART shift registers).

        The system calls this with the number of processor cycles elapsed;
        peripherals that have no time-dependent behaviour ignore it.
        """


class ApbBridge(AhbSlave):
    """The AHB/APB bridge plus the APB bus itself."""

    def __init__(self, base: int, size: int = 0x100000) -> None:
        super().__init__("apb-bridge", base, size)
        self._slaves: List[ApbSlave] = []  # state: wiring -- bridge topology; slave state captured per-peripheral
        self._tickable: List[ApbSlave] = []  # state: wiring -- bridge topology; slave state captured per-peripheral

    def attach(self, slave: ApbSlave) -> ApbSlave:
        for existing in self._slaves:
            if (slave.offset < existing.offset + existing.size
                    and existing.offset < slave.offset + slave.size):
                raise ConfigurationError(
                    f"APB ranges of {slave.name!r} and {existing.name!r} overlap"
                )
        if slave.offset + slave.size > self.size:
            raise ConfigurationError(f"APB slave {slave.name!r} outside bridge window")
        self._slaves.append(slave)
        if type(slave).tick is not ApbSlave.tick:
            self._tickable.append(slave)
        return slave

    def slaves(self) -> List[ApbSlave]:
        return list(self._slaves)

    def _decode(self, address: int) -> Optional[ApbSlave]:
        offset = address - self.base
        for slave in self._slaves:
            if slave.covers(offset):
                return slave
        return None

    def ahb_read(self, address: int, size: TransferSize) -> BusResult:
        if size is not TransferSize.WORD:
            # APB registers are word-wide; sub-word access is an error, as on
            # the real device.
            return BusResult(error=True, cycles=BRIDGE_PENALTY_CYCLES)
        slave = self._decode(address)
        if slave is None:
            return BusResult(error=True, cycles=BRIDGE_PENALTY_CYCLES)
        data = slave.apb_read(address - self.base - slave.offset) & 0xFFFFFFFF
        return BusResult(data=data, cycles=1 + BRIDGE_PENALTY_CYCLES)

    def ahb_write(self, address: int, value: int, size: TransferSize) -> BusResult:
        if size is not TransferSize.WORD:
            return BusResult(error=True, cycles=BRIDGE_PENALTY_CYCLES)
        slave = self._decode(address)
        if slave is None:
            return BusResult(error=True, cycles=BRIDGE_PENALTY_CYCLES)
        slave.apb_write(address - self.base - slave.offset, value & 0xFFFFFFFF)
        return BusResult(cycles=1 + BRIDGE_PENALTY_CYCLES)

    def tick(self, cycles: int) -> None:
        for slave in self._tickable:
            slave.tick(cycles)
