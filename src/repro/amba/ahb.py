"""AMBA AHB: the high-speed bus between the caches and external memory.

The model is transaction-level: a master issues a read/write/burst and gets
back the data, the number of bus cycles the transfer occupied, and the
response status.  That is all the processor-side logic (cache refill, write
buffer) and the experiments (timing, EDAC behaviour) observe of the bus.

Fixed-priority arbitration is modelled by an occupancy counter: if two
masters issue transfers in the same time window the later one accumulates
the residual busy cycles of the earlier, which is how the (optional) PCI or
debug masters would steal cache-refill bandwidth.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import BusError, ConfigurationError


class TransferSize(enum.IntEnum):
    """HSIZE: bytes per beat."""

    BYTE = 1
    HALFWORD = 2
    WORD = 4


@dataclass
class BusResult:
    """Outcome of one AHB transfer (single or one beat of a burst).

    Attributes:
        data: read data (zero for writes).
        cycles: bus cycles the transfer occupied, including wait states.
        error: True for an ERROR response (e.g. uncorrectable EDAC word or
            an unmapped address).
        corrected: number of single-bit errors the slave corrected on the
            fly while serving this transfer (EDAC reporting path).
    """

    data: int = 0
    cycles: int = 1
    error: bool = False
    corrected: int = 0


class AhbSlave(abc.ABC):
    """One slave on the AHB bus, mapped at ``[base, base + size)``."""

    def __init__(self, name: str, base: int, size: int) -> None:
        if size <= 0:
            raise ConfigurationError(f"AHB slave {name!r} has non-positive size")
        self.name = name
        self.base = base
        self.size = size

    def covers(self, address: int) -> bool:
        return self.base <= address < self.base + self.size

    @abc.abstractmethod
    def ahb_read(self, address: int, size: TransferSize) -> BusResult:
        """Serve a read at ``address`` (already range-checked)."""

    @abc.abstractmethod
    def ahb_write(self, address: int, value: int, size: TransferSize) -> BusResult:
        """Serve a write at ``address`` (already range-checked)."""

    def ahb_read_burst(self, address: int, nwords: int) -> List[BusResult]:
        """Incrementing word burst; default implementation repeats reads.

        Slaves that can stream (the memory controller) override this to
        charge wait states only on the first beat.
        """
        return [
            self.ahb_read(address + 4 * beat, TransferSize.WORD)
            for beat in range(nwords)
        ]


@dataclass
class AhbMaster:
    """Identity of a bus master (for arbitration bookkeeping)."""

    name: str
    priority: int = 0
    granted_cycles: int = field(default=0, init=False)


class AhbBus:
    """The AHB interconnect: decoder, arbiter and transfer bookkeeping."""

    def __init__(self) -> None:
        self._slaves: List[AhbSlave] = []  # state: wiring -- bus topology, rebuilt by construction
        self._masters: List[AhbMaster] = []
        self.transfers = 0
        self.busy_cycles = 0

    # -- configuration -------------------------------------------------------

    def attach(self, slave: AhbSlave) -> AhbSlave:
        """Attach a slave; address ranges must not overlap."""
        for existing in self._slaves:
            if (slave.base < existing.base + existing.size
                    and existing.base < slave.base + slave.size):
                raise ConfigurationError(
                    f"AHB ranges of {slave.name!r} and {existing.name!r} overlap"
                )
        self._slaves.append(slave)
        return slave

    def add_master(self, name: str, priority: int = 0) -> AhbMaster:
        master = AhbMaster(name, priority)
        self._masters.append(master)
        return master

    def slaves(self) -> Tuple[AhbSlave, ...]:
        return tuple(self._slaves)

    def capture(self) -> dict:
        """Transfer bookkeeping -- all observation state, hence ``"diag"``."""
        return {
            "diag": {
                "transfers": self.transfers,
                "busy_cycles": self.busy_cycles,
                "granted": {master.name: master.granted_cycles
                            for master in self._masters},
            },
        }

    def restore(self, state: dict) -> None:
        diag = state.get("diag") or {}
        self.transfers = int(diag.get("transfers", 0))
        self.busy_cycles = int(diag.get("busy_cycles", 0))
        granted = diag.get("granted", {})
        for master in self._masters:
            master.granted_cycles = int(granted.get(master.name, 0))

    def decode(self, address: int) -> Optional[AhbSlave]:
        for slave in self._slaves:
            if slave.covers(address):
                return slave
        return None

    # -- transfers -----------------------------------------------------------

    def _account(self, master: Optional[AhbMaster], result: BusResult) -> BusResult:
        self.transfers += 1
        self.busy_cycles += result.cycles
        if master is not None:
            master.granted_cycles += result.cycles
        return result

    def read(self, address: int, size: TransferSize = TransferSize.WORD,
             master: Optional[AhbMaster] = None) -> BusResult:
        """One read transfer.  Unmapped addresses get an ERROR response."""
        slave = self.decode(address)
        if slave is None:
            return self._account(master, BusResult(error=True))
        return self._account(master, slave.ahb_read(address, size))

    def write(self, address: int, value: int, size: TransferSize = TransferSize.WORD,
              master: Optional[AhbMaster] = None) -> BusResult:
        """One write transfer."""
        slave = self.decode(address)
        if slave is None:
            return self._account(master, BusResult(error=True))
        return self._account(master, slave.ahb_write(address, value, size))

    def read_burst(self, address: int, nwords: int,
                   master: Optional[AhbMaster] = None) -> List[BusResult]:
        """Incrementing word burst (cache line refill)."""
        slave = self.decode(address)
        if slave is None:
            results = [BusResult(error=True) for _ in range(nwords)]
        else:
            results = slave.ahb_read_burst(address, nwords)
        for result in results:
            self._account(master, result)
        return results

    def read_word_checked(self, address: int,
                          master: Optional[AhbMaster] = None) -> int:
        """Convenience read that raises :class:`BusError` on ERROR responses
        (used by tests and examples, not by the processor)."""
        result = self.read(address, TransferSize.WORD, master)
        if result.error:
            raise BusError(address)
        return result.data
