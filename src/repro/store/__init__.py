"""The storage + query layer: one corpus of runs, many readers.

ROADMAP item 1 (DAVOS Datamanager/Reportbuilder mold): campaign results
stop being throwaway per-invocation JSONL and become a shared, queryable
corpus.  This package is the single path to that corpus:

``repro.store.db``
    :class:`CampaignDatabase` -- the indexed SQLite schema (campaigns,
    runs, upsets, events, jobs) with idempotent ingest from the JSONL
    :class:`~repro.fault.results.ResultStore` format.

``repro.store.sources``
    Result sources -- :class:`JsonlResults` and :class:`DatabaseResults`
    present the same ordered ``List[CampaignResult]`` view over either
    backing store, so every query below is backend-agnostic.  The
    module also wraps the raw JSONL reads (:func:`load_results`,
    :func:`split_pending`) the CLI used to perform on ``ResultStore``
    directly: lint rule FT501 keeps those reads inside this package.

``repro.store.query``
    The query functions the CLI and the campaign service both sit on:
    Table-2 folds, cross-section curves, availability readouts,
    campaign diffs and lifecycle traces.
"""

from repro.store.db import CampaignDatabase
from repro.store.query import (
    availability_readout,
    curve_from_results,
    diff_results,
    fold_results,
    lifecycle_rows,
    trace_stats,
)
from repro.store.sources import (
    DatabaseResults,
    JsonlResults,
    load_results,
    split_pending,
)

__all__ = [
    "CampaignDatabase",
    "DatabaseResults",
    "JsonlResults",
    "availability_readout",
    "curve_from_results",
    "diff_results",
    "fold_results",
    "lifecycle_rows",
    "load_results",
    "split_pending",
    "trace_stats",
]
