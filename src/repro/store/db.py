"""The campaign database: an indexed SQLite schema over stored runs.

DAVOS keeps every injection campaign in one queryable datamanager store;
this is the equivalent for the simulator.  The schema:

``campaigns``
    One row per named corpus of runs -- a service job, an ingested JSONL
    file, or an ad-hoc insert.
``runs``
    One row per campaign run, keyed ``(campaign_id, config_key)`` with
    the full :func:`~repro.fault.results.result_to_dict` payload plus
    indexed columns for the common filters (program, LET, seed ...).
    Ingest is **idempotent**: re-inserting a run upserts the payload and
    keeps the row's original position, so re-running an ingest -- or
    resuming a crashed job -- never duplicates and never reorders.
``upsets`` / ``readouts``
    Per-run strike tallies by target and counter readouts by name,
    unpacked for per-target/per-counter SQL without JSON parsing.
``events``
    Telemetry trace events (the SEU lifecycles), ``(campaign, run, seq)``
    ordered, payloads verbatim -- folding them back through
    :func:`repro.telemetry.fold_stats` is byte-identical to folding the
    JSONL trace they came from.
``jobs``
    The service's job queue (:mod:`repro.service.jobs`): submitted
    configs, lifecycle state, and progress counts.  Persisted here so a
    restarted server resumes interrupted jobs against the runs already
    stored.

Results read back from the database are bit-for-bit the results that
went in (the payload column is authoritative; the typed columns are an
index, not a second copy of the truth).
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
from typing import Dict, Iterable, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.fault.campaign import CampaignConfig, CampaignResult
from repro.fault.results import (
    config_from_dict,
    config_key,
    config_to_dict,
    result_from_dict,
    result_to_dict,
)

#: Bump when the schema changes incompatibly.
#: v2: runs.fault_model column (defaults 'seu' for rows written by v1).
SCHEMA_VERSION = 2

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS campaigns (
    id         INTEGER PRIMARY KEY,
    name       TEXT NOT NULL UNIQUE,
    source     TEXT NOT NULL DEFAULT '',
    created_at REAL NOT NULL DEFAULT 0.0
);
CREATE TABLE IF NOT EXISTS runs (
    id           INTEGER PRIMARY KEY,
    campaign_id  INTEGER NOT NULL REFERENCES campaigns(id) ON DELETE CASCADE,
    position     INTEGER NOT NULL,
    config_key   TEXT NOT NULL,
    program      TEXT NOT NULL,
    let          REAL NOT NULL,
    flux         REAL NOT NULL,
    fluence      REAL NOT NULL,
    seed         TEXT NOT NULL,  -- derived seeds exceed signed 64-bit
    recovery     TEXT NOT NULL,
    fault_model  TEXT NOT NULL DEFAULT 'seu',
    upsets       INTEGER NOT NULL,
    sw_errors    INTEGER NOT NULL,
    error_traps  INTEGER NOT NULL,
    halted       INTEGER NOT NULL,
    iterations   INTEGER NOT NULL,
    instructions INTEGER NOT NULL,
    cycles       INTEGER NOT NULL,
    halts        INTEGER NOT NULL,
    unrecovered  INTEGER NOT NULL,
    exit_reason  TEXT NOT NULL,
    total_errors INTEGER NOT NULL,
    payload      TEXT NOT NULL,
    UNIQUE (campaign_id, config_key)
);
CREATE INDEX IF NOT EXISTS runs_by_position
    ON runs (campaign_id, position);
CREATE INDEX IF NOT EXISTS runs_by_let
    ON runs (campaign_id, program, let);
CREATE TABLE IF NOT EXISTS upsets (
    run_id INTEGER NOT NULL REFERENCES runs(id) ON DELETE CASCADE,
    target TEXT NOT NULL,
    count  INTEGER NOT NULL,
    PRIMARY KEY (run_id, target)
);
CREATE TABLE IF NOT EXISTS readouts (
    run_id  INTEGER NOT NULL REFERENCES runs(id) ON DELETE CASCADE,
    counter TEXT NOT NULL,
    count   INTEGER NOT NULL,
    PRIMARY KEY (run_id, counter)
);
CREATE TABLE IF NOT EXISTS events (
    campaign_id INTEGER NOT NULL REFERENCES campaigns(id) ON DELETE CASCADE,
    run         INTEGER NOT NULL,
    seq         INTEGER NOT NULL,
    ev          TEXT NOT NULL,
    payload     TEXT NOT NULL,
    PRIMARY KEY (campaign_id, run, seq)
);
CREATE TABLE IF NOT EXISTS jobs (
    id           INTEGER PRIMARY KEY,
    name         TEXT NOT NULL,
    state        TEXT NOT NULL,
    campaign_id  INTEGER REFERENCES campaigns(id),
    configs      TEXT NOT NULL,
    options      TEXT NOT NULL DEFAULT '{}',
    total        INTEGER NOT NULL,
    completed    INTEGER NOT NULL DEFAULT 0,
    error        TEXT NOT NULL DEFAULT '',
    submitted_at REAL NOT NULL DEFAULT 0.0
);
"""


def _wall_clock() -> float:
    """Submission/creation timestamps -- dashboard bookkeeping only,
    never part of any measured result."""
    return time.time()  # lint: ok=det-time -- service bookkeeping timestamp


class CampaignDatabase:
    """SQLite-backed store of campaigns, runs, lifecycles and jobs.

    Thread-safe: a single connection guarded by one lock serves every
    thread (the HTTP handler pool, the job scheduler, and the CLI), and
    each write method is one transaction.  ``path`` may be ``":memory:"``
    for tests.
    """

    def __init__(self, path: str = ":memory:") -> None:
        self.path = path
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(path, check_same_thread=False)
        self._conn.row_factory = sqlite3.Row
        with self._lock, self._conn:
            self._conn.execute("PRAGMA foreign_keys = ON")
            if path != ":memory:" and not path.startswith("file:"):
                self._conn.execute("PRAGMA journal_mode = WAL")
            self._conn.executescript(_SCHEMA)
            row = self._conn.execute(
                "SELECT value FROM meta WHERE key = 'schema_version'"
            ).fetchone()
            if row is None:
                self._conn.execute(
                    "INSERT INTO meta (key, value) VALUES (?, ?)",
                    ("schema_version", str(SCHEMA_VERSION)))
            else:
                self._migrate(path, int(row["value"]))

    def _migrate(self, path: str, version: int) -> None:
        """Upgrade an older on-disk schema in place (caller holds lock).

        v1 -> v2 adds ``runs.fault_model``; every pre-existing row was
        written before the model layer and is a transient-SEU run, which
        is exactly the column default.  Payloads are untouched, so
        results read back bit-for-bit.  Newer-than-us schemas still
        refuse to open.
        """
        if version == SCHEMA_VERSION:
            return
        if version > SCHEMA_VERSION:
            raise ConfigurationError(
                f"{path}: campaign database schema v{version} "
                f"(this build reads v{SCHEMA_VERSION})")
        if version == 1:
            columns = {row["name"] for row in self._conn.execute(
                "PRAGMA table_info(runs)").fetchall()}
            if "fault_model" not in columns:
                self._conn.execute(
                    "ALTER TABLE runs ADD COLUMN fault_model "
                    "TEXT NOT NULL DEFAULT 'seu'")
            version = 2
        if version != SCHEMA_VERSION:
            raise ConfigurationError(
                f"{path}: no migration path from campaign database "
                f"schema v{version} to v{SCHEMA_VERSION}")
        self._conn.execute(
            "UPDATE meta SET value = ? WHERE key = 'schema_version'",
            (str(SCHEMA_VERSION),))

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "CampaignDatabase":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- campaigns ---------------------------------------------------------

    def ensure_campaign(self, name: str, *, source: str = "") -> int:
        """The campaign's id, creating the row on first use."""
        with self._lock, self._conn:
            row = self._conn.execute(
                "SELECT id FROM campaigns WHERE name = ?", (name,)).fetchone()
            if row is not None:
                return int(row["id"])
            cursor = self._conn.execute(
                "INSERT INTO campaigns (name, source, created_at) "
                "VALUES (?, ?, ?)", (name, source, _wall_clock()))
            return int(cursor.lastrowid)

    def campaign_id(self, name_or_id) -> int:
        """Resolve a campaign by numeric id or name."""
        with self._lock:
            if isinstance(name_or_id, int) or str(name_or_id).isdigit():
                row = self._conn.execute(
                    "SELECT id FROM campaigns WHERE id = ?",
                    (int(name_or_id),)).fetchone()
            else:
                row = self._conn.execute(
                    "SELECT id FROM campaigns WHERE name = ?",
                    (str(name_or_id),)).fetchone()
        if row is None:
            raise ConfigurationError(f"unknown campaign {name_or_id!r}")
        return int(row["id"])

    def campaigns(self) -> List[Dict[str, object]]:
        """Every campaign with its run count, insertion-ordered."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT c.id, c.name, c.source, c.created_at, "
                "       COUNT(r.id) AS runs, "
                "       COALESCE(SUM(r.total_errors), 0) AS total_errors, "
                "       COALESCE(SUM(r.upsets), 0) AS upsets "
                "FROM campaigns c LEFT JOIN runs r ON r.campaign_id = c.id "
                "GROUP BY c.id ORDER BY c.id").fetchall()
        return [dict(row) for row in rows]

    # -- runs --------------------------------------------------------------

    def add_results(self, campaign: int,
                    results: Iterable[CampaignResult]) -> int:
        """Upsert results into the campaign; returns rows written.

        Idempotent by ``(campaign, config_key)``: a re-inserted run
        replaces its payload but keeps its original position, so ingest
        retries and job resumes leave the corpus unchanged.
        """
        written = 0
        with self._lock, self._conn:
            row = self._conn.execute(
                "SELECT COALESCE(MAX(position), -1) AS top FROM runs "
                "WHERE campaign_id = ?", (campaign,)).fetchone()
            position = int(row["top"]) + 1
            for result in results:
                payload = result_to_dict(result)
                key = config_key(result.config)
                config = result.config
                self._conn.execute(
                    "INSERT INTO runs (campaign_id, position, config_key, "
                    " program, let, flux, fluence, seed, recovery, "
                    " fault_model, upsets, "
                    " sw_errors, error_traps, halted, iterations, "
                    " instructions, cycles, halts, unrecovered, exit_reason, "
                    " total_errors, payload) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, "
                    "        ?, ?, ?, ?, ?, ?, ?) "
                    "ON CONFLICT (campaign_id, config_key) DO UPDATE SET "
                    " program = excluded.program, let = excluded.let, "
                    " flux = excluded.flux, fluence = excluded.fluence, "
                    " seed = excluded.seed, recovery = excluded.recovery, "
                    " fault_model = excluded.fault_model, "
                    " upsets = excluded.upsets, "
                    " sw_errors = excluded.sw_errors, "
                    " error_traps = excluded.error_traps, "
                    " halted = excluded.halted, "
                    " iterations = excluded.iterations, "
                    " instructions = excluded.instructions, "
                    " cycles = excluded.cycles, halts = excluded.halts, "
                    " unrecovered = excluded.unrecovered, "
                    " exit_reason = excluded.exit_reason, "
                    " total_errors = excluded.total_errors, "
                    " payload = excluded.payload",
                    (campaign, position, key, config.program, config.let,
                     config.flux, config.fluence, str(config.seed),
                     config.recovery, config.fault_model,
                     result.upsets, result.sw_errors,
                     result.error_traps, int(result.halted),
                     result.iterations, result.instructions, result.cycles,
                     result.halts, int(result.unrecovered),
                     result.exit_reason, result.counts.get("Total", 0),
                     json.dumps(payload, sort_keys=True)))
                run_id = int(self._conn.execute(
                    "SELECT id FROM runs WHERE campaign_id = ? "
                    "AND config_key = ?", (campaign, key)).fetchone()["id"])
                self._conn.execute(
                    "DELETE FROM upsets WHERE run_id = ?", (run_id,))
                self._conn.execute(
                    "DELETE FROM readouts WHERE run_id = ?", (run_id,))
                self._conn.executemany(
                    "INSERT INTO upsets (run_id, target, count) "
                    "VALUES (?, ?, ?)",
                    [(run_id, target, count) for target, count
                     in sorted(result.upsets_by_target.items())])
                self._conn.executemany(
                    "INSERT INTO readouts (run_id, counter, count) "
                    "VALUES (?, ?, ?)",
                    [(run_id, counter, count) for counter, count
                     in sorted(result.counts.items())])
                position += 1
                written += 1
        return written

    def results(self, campaign: int) -> List[CampaignResult]:
        """Every stored result of the campaign, in insertion order.

        Bit-for-bit the results that were inserted: rows decode through
        :func:`~repro.fault.results.result_from_dict` exactly like a
        JSONL result log.
        """
        with self._lock:
            rows = self._conn.execute(
                "SELECT payload FROM runs WHERE campaign_id = ? "
                "ORDER BY position", (campaign,)).fetchall()
        return [result_from_dict(json.loads(row["payload"])) for row in rows]

    def result_keys(self, campaign: int) -> List[str]:
        """The stored ``config_key`` strings, insertion-ordered."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT config_key FROM runs WHERE campaign_id = ? "
                "ORDER BY position", (campaign,)).fetchall()
        return [row["config_key"] for row in rows]

    def split_pending(
        self, campaign: int, configs: Sequence[CampaignConfig]
    ) -> "tuple[Dict[str, CampaignResult], List[CampaignConfig]]":
        """Partition configs into (already-stored results, still-to-run).

        The database analogue of
        :meth:`repro.fault.results.ResultStore.split_pending` -- the
        resume primitive of both ``repro ingest`` and the job scheduler.
        """
        stored = {config_key(result.config): result
                  for result in self.results(campaign)}
        done: Dict[str, CampaignResult] = {}
        pending: List[CampaignConfig] = []
        for config in configs:
            key = config_key(config)
            if key in stored:
                done[key] = stored[key]
            else:
                pending.append(config)
        return done, pending

    # -- telemetry events --------------------------------------------------

    def add_run_events(self, campaign: int, run: int,
                       events: Sequence[Dict[str, object]]) -> None:
        """Replace the stored trace of one run (idempotent per run).

        Events are stored with their ``run`` tag normalized to *run* --
        the same framing :class:`repro.telemetry.JsonlTraceSink.write_run`
        applies -- so reading them back reproduces the trace file's
        event stream byte for byte.
        """
        with self._lock, self._conn:
            self._conn.execute(
                "DELETE FROM events WHERE campaign_id = ? AND run = ?",
                (campaign, run))
            rows = []
            for seq, event in enumerate(events):
                tagged = {"run": run}
                tagged.update(event)
                tagged["run"] = run
                rows.append((campaign, run, seq, str(tagged.get("ev", "")),
                             json.dumps(tagged, sort_keys=True)))
            self._conn.executemany(
                "INSERT INTO events (campaign_id, run, seq, ev, payload) "
                "VALUES (?, ?, ?, ?, ?)", rows)

    def events(self, campaign: int) -> List[Dict[str, object]]:
        """The campaign's trace events in (run, seq) order."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT payload FROM events WHERE campaign_id = ? "
                "ORDER BY run, seq", (campaign,)).fetchall()
        return [json.loads(row["payload"]) for row in rows]

    # -- ingest ------------------------------------------------------------

    def ingest_results(self, path: str, *,
                       name: Optional[str] = None) -> "tuple[int, int]":
        """Import a JSONL result log; returns (campaign id, rows written).

        Reads through the crash-tolerant :mod:`repro.store.sources`
        loader (truncated tail lines are skipped, later duplicates win)
        and upserts -- re-ingesting the same file is a no-op.
        """
        from repro.store.sources import load_results

        label = name or os.path.splitext(os.path.basename(path))[0]
        campaign = self.ensure_campaign(label, source=path)
        return campaign, self.add_results(campaign, load_results(path))

    def ingest_trace(self, path: str, *,
                     name: Optional[str] = None) -> "tuple[int, int]":
        """Import a JSONL telemetry trace; returns (campaign id, events).

        Events land in the campaign named after the trace file (or
        *name*), grouped by their ``run`` tags; re-ingesting replaces
        each run's events in place.
        """
        from repro.telemetry import read_trace

        label = name or os.path.splitext(os.path.basename(path))[0]
        campaign = self.ensure_campaign(label, source=path)
        events = read_trace(path)
        by_run: Dict[int, List[Dict[str, object]]] = {}
        for event in events:
            by_run.setdefault(int(event.get("run", 0)), []).append(event)
        total = 0
        for run in sorted(by_run):
            self.add_run_events(campaign, run, by_run[run])
            total += len(by_run[run])
        return campaign, total

    # -- jobs --------------------------------------------------------------

    def create_job(self, configs: Sequence[CampaignConfig], *,
                   name: Optional[str] = None,
                   options: Optional[Dict[str, object]] = None) -> int:
        """Persist a submitted job (state ``queued``); returns its id.

        Without a *name* the job gets ``job-<id>`` and its own campaign;
        a named job appends to the campaign of that name -- submitting
        under one name accumulates a shared corpus across jobs.
        """
        payload = json.dumps([config_to_dict(config) for config in configs])
        with self._lock, self._conn:
            cursor = self._conn.execute(
                "INSERT INTO jobs (name, state, configs, options, total, "
                " submitted_at) VALUES ('', 'queued', ?, ?, ?, ?)",
                (payload, json.dumps(options or {}, sort_keys=True),
                 len(configs), _wall_clock()))
            job_id = int(cursor.lastrowid)
            label = name or f"job-{job_id}"
            campaign = self.ensure_campaign(label, source="job")
            self._conn.execute(
                "UPDATE jobs SET name = ?, campaign_id = ? WHERE id = ?",
                (label, campaign, job_id))
            return job_id

    def job(self, job_id: int) -> Dict[str, object]:
        with self._lock:
            row = self._conn.execute(
                "SELECT * FROM jobs WHERE id = ?", (job_id,)).fetchone()
        if row is None:
            raise ConfigurationError(f"unknown job {job_id}")
        record = dict(row)
        record["options"] = json.loads(record["options"])
        return record

    def job_configs(self, job_id: int) -> List[CampaignConfig]:
        with self._lock:
            row = self._conn.execute(
                "SELECT configs FROM jobs WHERE id = ?",
                (job_id,)).fetchone()
        if row is None:
            raise ConfigurationError(f"unknown job {job_id}")
        return [config_from_dict(payload)
                for payload in json.loads(row["configs"])]

    def jobs(self, states: Optional[Sequence[str]] = None
             ) -> List[Dict[str, object]]:
        """Job rows (without the config payload), submission-ordered."""
        query = ("SELECT id, name, state, campaign_id, total, completed, "
                 "error, submitted_at FROM jobs")
        args: tuple = ()
        if states:
            marks = ",".join("?" for _ in states)
            query += f" WHERE state IN ({marks})"
            args = tuple(states)
        with self._lock:
            rows = self._conn.execute(query + " ORDER BY id", args).fetchall()
        return [dict(row) for row in rows]

    def update_job(self, job_id: int, *, state: Optional[str] = None,
                   completed: Optional[int] = None,
                   error: Optional[str] = None) -> None:
        sets, args = [], []
        if state is not None:
            sets.append("state = ?")
            args.append(state)
        if completed is not None:
            sets.append("completed = ?")
            args.append(completed)
        if error is not None:
            sets.append("error = ?")
            args.append(error)
        if not sets:
            return
        args.append(job_id)
        with self._lock, self._conn:
            self._conn.execute(
                f"UPDATE jobs SET {', '.join(sets)} WHERE id = ?", args)
