"""Result sources: one ordered view over either backing store.

A *source* yields the campaign's results as an ordered
``List[CampaignResult]`` -- the shape every query in
:mod:`repro.store.query` consumes -- regardless of whether the runs live
in a crash-safe JSONL log (:class:`JsonlResults`) or in the campaign
database (:class:`DatabaseResults`).  The two views of the same campaign
are byte-identical, which is what makes the HTTP service's numbers
provably equal to the CLI's.

This module is also the sanctioned home of raw JSONL *reads*: lint rule
FT501 (``store-query-path``) flags ``ResultStore.load`` /
``split_pending`` calls anywhere else in the package, so every consumer
-- CLI subcommands included -- goes through :func:`load_results` /
:func:`split_pending` here and automatically keeps working when the
backing store changes.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.fault.campaign import CampaignConfig, CampaignResult
from repro.fault.results import ResultStore


def load_results(path: str) -> List[CampaignResult]:
    """Every result in a JSONL log, in first-appearance order.

    Later duplicate lines supersede earlier ones (a re-run wins) without
    changing the run's position; a crash-truncated tail line is skipped.
    """
    return list(ResultStore(path).load().values())


def split_pending(
    path: str, configs: Sequence[CampaignConfig]
) -> "tuple[Dict[str, CampaignResult], List[CampaignConfig]]":
    """Partition configs against a JSONL log: (stored results, to-run)."""
    return ResultStore(path).split_pending(configs)


class JsonlResults:
    """A JSONL result log presented as an ordered result source."""

    def __init__(self, path: str) -> None:
        self.path = path

    def results(self) -> List[CampaignResult]:
        return load_results(self.path)


class DatabaseResults:
    """One database campaign presented as an ordered result source."""

    def __init__(self, db, campaign) -> None:
        self.db = db
        self.campaign = db.campaign_id(campaign)

    def results(self) -> List[CampaignResult]:
        return self.db.results(self.campaign)

    def events(self) -> List[Dict[str, object]]:
        """The campaign's stored telemetry events, (run, seq)-ordered."""
        return self.db.events(self.campaign)
