"""The query functions the CLI and the campaign service both sit on.

Every function takes the plain ordered ``List[CampaignResult]`` (or
event list) a :mod:`repro.store.sources` source yields, so the same
query runs unchanged over a JSONL log, a database campaign, or an
in-memory batch -- and produces byte-identical numbers over byte-identical
results.  The renderers in :mod:`repro.fault.report` stay the single
formatting path; this module only *aggregates*.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.fault.campaign import CampaignResult
from repro.fault.crosssection import (
    COUNTER_TARGETS,
    CrossSectionCurve,
    CrossSectionPoint,
    target_bits,
)
from repro.fault.models import security_fold
from repro.fault.report import render_recovery_summary, render_table2, table2_rows
from repro.fault.results import config_key
from repro.telemetry import fold_stats, lifecycles

#: Counter readouts summed by :func:`fold_results`.
_FOLD_COUNTERS = ("ITE", "IDE", "DTE", "DDE", "RFE", "Total")


def fold_results(results: Sequence[CampaignResult]) -> Dict[str, object]:
    """The Table-2 fold of a campaign: per-run rows plus the aggregate.

    ``rows``/``rendered`` are exactly the CLI ``campaign`` table; the
    ``totals`` block sums the counter readouts and failure bookkeeping
    the way the CLI's summary line does.
    """
    counts = {name: 0 for name in _FOLD_COUNTERS}
    upsets = failures = iterations = instructions = 0
    fluence = 0.0
    for result in results:
        for name in _FOLD_COUNTERS:
            counts[name] += result.counts.get(name, 0)
        upsets += result.upsets
        failures += result.failures
        iterations += result.iterations
        instructions += result.instructions
        fluence += result.config.fluence
    payload: Dict[str, object] = {
        "runs": len(results),
        "rows": table2_rows(results),
        "rendered": render_table2(results) if results else "",
        "totals": {
            "counts": counts,
            "upsets": upsets,
            "failures": failures,
            "iterations": iterations,
            "instructions": instructions,
            "fluence": fluence,
            "cross_section": (counts["Total"] / fluence) if fluence else 0.0,
        },
    }
    if any(result.recovery_events or result.halts or result.unrecovered
           for result in results):
        payload["recovery"] = render_recovery_summary(results)
    if any(result.config.fault_model != "seu" for result in results):
        # Security readout: detected / silent / masked per fault model.
        payload["security"] = {
            model: dict(outcomes)
            for model, outcomes in security_fold(results).items()}
    return payload


def curve_from_results(results: Sequence[CampaignResult],
                       leon=None) -> CrossSectionCurve:
    """Rebuild the per-bit cross-section curve from stored runs.

    Runs are grouped by LET in first-appearance order; each group's
    counts and fluence sum before the per-bit normalization.  For the
    one-run-per-LET campaigns :func:`repro.fault.crosssection.
    measure_curve` submits, the arithmetic reduces to exactly its
    ``count / fluence / bits`` -- the curve is byte-identical to the
    live sweep's, which is what the service-smoke equivalence check
    relies on.
    """
    program = results[0].config.program if results else ""
    curve = CrossSectionCurve(program,
                              {kind: [] for kind in COUNTER_TARGETS})
    curve.points["Total"] = []
    bits = target_bits(leon)
    total_bits = sum(bits.values())
    order: List[float] = []
    grouped: Dict[float, Dict[str, float]] = {}
    for result in results:
        let = result.config.let
        if let not in grouped:
            order.append(let)
            grouped[let] = {"fluence": 0.0}
            grouped[let].update({name: 0 for name in _FOLD_COUNTERS})
        cell = grouped[let]
        cell["fluence"] += result.config.fluence
        for name in _FOLD_COUNTERS:
            cell[name] += result.counts.get(name, 0)
    for let in order:
        cell = grouped[let]
        fluence = cell["fluence"] or 1.0
        for kind in COUNTER_TARGETS:
            count = int(cell[kind])
            curve.points[kind].append(CrossSectionPoint(
                let, count / fluence / bits[kind], count))
        total = int(cell["Total"])
        curve.points["Total"].append(CrossSectionPoint(
            let, total / fluence / total_bits, total))
    return curve


def availability_readout(results: Sequence[CampaignResult], *,
                         clock_hz: Optional[float] = None
                         ) -> Dict[str, object]:
    """Measured availability of a stored campaign, as plain JSON."""
    from repro.alternatives.availability import (
        DEFAULT_CLOCK_HZ,
        measure_availability,
    )

    hz = clock_hz if clock_hz is not None else DEFAULT_CLOCK_HZ
    measured = measure_availability(results, clock_hz=hz)
    return {
        "runs": measured.runs,
        "clock_hz": measured.clock_hz,
        "uptime_seconds": measured.uptime_seconds,
        "downtime_seconds": measured.downtime_seconds,
        "availability": measured.availability,
        "mttr_seconds": measured.mttr_seconds,
        "mean_outage_seconds": measured.mean_outage_seconds,
        "recoveries": dict(measured.recoveries),
        "downtime_by_level": dict(measured.downtime_by_level),
        "halts": measured.halts,
        "unrecovered_runs": measured.unrecovered_runs,
    }


def diff_results(a: Sequence[CampaignResult],
                 b: Sequence[CampaignResult]) -> Dict[str, object]:
    """Compare two campaigns run for run, keyed by config identity.

    Runs sharing a config key are compared on their deterministic
    measurement fields (:meth:`CampaignResult.comparable`); the summary
    counts matches/changes and the counter-total delta -- the regression
    view of the dashboard.
    """
    a_by_key = {config_key(result.config): result for result in a}
    b_by_key = {config_key(result.config): result for result in b}
    changed: List[Dict[str, object]] = []
    matched = 0
    for key, result in a_by_key.items():
        other = b_by_key.get(key)
        if other is None:
            continue
        if result.comparable() == other.comparable():
            matched += 1
            continue
        fields: Dict[str, object] = {}
        if result.counts != other.counts:
            fields["counts"] = {"a": dict(result.counts),
                                "b": dict(other.counts)}
        for name in ("sw_errors", "error_traps", "halted", "iterations",
                     "instructions", "cycles", "upsets", "halts",
                     "unrecovered"):
            va, vb = getattr(result, name), getattr(other, name)
            if va != vb:
                fields[name] = {"a": va, "b": vb}
        changed.append({
            "program": result.config.program,
            "let": result.config.let,
            "seed": result.config.seed,
            "fields": fields,
        })
    delta = {}
    for name in _FOLD_COUNTERS:
        total_a = sum(r.counts.get(name, 0) for r in a)
        total_b = sum(r.counts.get(name, 0) for r in b)
        if total_a != total_b:
            delta[name] = total_b - total_a
    return {
        "runs_a": len(a),
        "runs_b": len(b),
        "matched": matched,
        "changed": changed,
        "only_a": sum(1 for key in a_by_key if key not in b_by_key),
        "only_b": sum(1 for key in b_by_key if key not in a_by_key),
        "counter_delta": delta,
        "failures_a": sum(r.failures for r in a),
        "failures_b": sum(r.failures for r in b),
    }


def lifecycle_rows(events: Sequence[Dict[str, object]]
                   ) -> List[Dict[str, object]]:
    """Per-upset lifecycle summaries from a stored (or file) trace."""
    rows = []
    for life in lifecycles(events):
        rows.append({
            "run": life.run,
            "upset": life.upset,
            "target": life.target,
            "state": life.state,
            "terminal": life.terminal,
            "latency": life.latency,
            "detects": len(life.detects),
            "resolves": len(life.resolves),
        })
    return rows


def trace_stats(events: Sequence[Dict[str, object]]) -> Dict[str, object]:
    """A stored trace folded to its headline stats, as plain JSON."""
    stats = fold_stats(events)
    return {
        "runs": stats.runs,
        "strikes": stats.strikes,
        "strikes_by_target": dict(stats.strikes_by_target),
        "strikes_by_kind": dict(stats.strikes_by_kind),
        "counters": dict(stats.counters),
        "reported": dict(stats.reported),
        "consistent": stats.consistent,
        "states": dict(stats.states),
        "recoveries": dict(stats.recoveries),
        "early_exits": dict(stats.early_exits),
        "ace": dict(stats.ace) if stats.ace is not None else None,
    }
