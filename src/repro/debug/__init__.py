"""Debug support: instruction trace, breakpoints, watchpoints.

The ATC25 LEON (paper section 9) adds "an on-chip debug unit"; the later
LEON2/3 DSU provides an instruction trace buffer and hardware breakpoints.
This package models that facility at the harness level: it drives the
processor step by step, records a ring-buffer trace, and stops on code
breakpoints or data watchpoints -- the tooling one actually uses to chase
an SEU-induced failure through the pipeline.
"""

from repro.debug.dsu import Breakpoint, DebugSupportUnit, TraceEntry, Watchpoint

__all__ = ["Breakpoint", "DebugSupportUnit", "TraceEntry", "Watchpoint"]
