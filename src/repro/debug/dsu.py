"""The debug support unit: trace buffer, breakpoints, watchpoints."""

from __future__ import annotations

import collections
from dataclasses import dataclass
from typing import Deque, Dict, Iterable, List, Optional

from repro.core.system import LeonSystem
from repro.iu.pipeline import StepEvent, StepResult
from repro.sparc.disasm import disassemble


@dataclass(frozen=True)
class TraceEntry:
    """One executed (or attempted) instruction in the trace buffer."""

    sequence: int
    pc: int
    word: int
    event: StepEvent
    cycles: int
    cwp: int

    def render(self) -> str:
        text = disassemble(self.word, self.pc)
        marker = {
            StepEvent.TRAP: " <trap>",
            StepEvent.RESTART: " <ft-restart>",
            StepEvent.ANNULLED: " <annulled>",
            StepEvent.INTERRUPT: " <interrupt>",
            StepEvent.HALTED: " <halted>",
        }.get(self.event, "")
        return f"{self.sequence:>8}  {self.pc:#010x}  {text}{marker}"


@dataclass(frozen=True)
class Breakpoint:
    """Stop before executing the instruction at ``address``."""

    address: int
    name: str = ""


@dataclass(frozen=True)
class Watchpoint:
    """Stop after a store hits ``[address, address + length)``."""

    address: int
    length: int = 4
    name: str = ""

    def hit(self, write_address: int) -> bool:
        return self.address <= write_address < self.address + self.length


@dataclass
class StopInfo:
    """Why :meth:`DebugSupportUnit.run` returned."""

    reason: str  # "breakpoint" | "watchpoint" | "halted" | "budget"
    pc: int
    breakpoint: Optional[Breakpoint] = None
    watchpoint: Optional[Watchpoint] = None
    write_address: Optional[int] = None
    instructions: int = 0


class DebugSupportUnit:
    """Drives a :class:`LeonSystem` with trace and break/watch support.

    The DSU is a harness-side monitor: it does not perturb the processor
    (no extra cycles), it just observes every step.
    """

    def __init__(self, system: LeonSystem, *, trace_depth: int = 256) -> None:
        self.system = system
        self.trace_depth = trace_depth
        self._trace: Deque[TraceEntry] = collections.deque(maxlen=trace_depth)
        self._breakpoints: Dict[int, Breakpoint] = {}
        self._watchpoints: List[Watchpoint] = []
        self._sequence = 0
        #: Event counters over the whole session.
        self.event_counts: Dict[StepEvent, int] = collections.defaultdict(int)

    # -- configuration ---------------------------------------------------------

    def add_breakpoint(self, address: int, name: str = "") -> Breakpoint:
        breakpoint = Breakpoint(address & ~3, name)
        self._breakpoints[breakpoint.address] = breakpoint
        return breakpoint

    def remove_breakpoint(self, address: int) -> None:
        self._breakpoints.pop(address & ~3, None)

    def add_watchpoint(self, address: int, length: int = 4,
                       name: str = "") -> Watchpoint:
        watchpoint = Watchpoint(address, length, name)
        self._watchpoints.append(watchpoint)
        return watchpoint

    def breakpoints(self) -> Iterable[Breakpoint]:
        return list(self._breakpoints.values())

    # -- execution ----------------------------------------------------------------

    def step(self) -> StepResult:
        """Execute one instruction, recording it in the trace."""
        pc = self.system.special.pc
        word = self._peek_instruction(pc)
        result = self.system.step()
        self._sequence += 1
        self.event_counts[result.event] += 1
        self._trace.append(TraceEntry(
            sequence=self._sequence,
            pc=result.pc,
            word=word,
            event=result.event,
            cycles=result.cycles,
            cwp=self.system.special.psr.cwp,
        ))
        return result

    def _peek_instruction(self, pc: int) -> int:
        try:
            return self.system.read_word(pc)
        except Exception:
            return 0

    def run(self, max_instructions: int = 1_000_000) -> StopInfo:
        """Run to a breakpoint, watchpoint, halt, or the budget."""
        executed = 0
        while executed < max_instructions:
            pc = self.system.special.pc
            hit = self._breakpoints.get(pc)
            if hit is not None:
                return StopInfo("breakpoint", pc, breakpoint=hit,
                                instructions=executed)
            result = self.step()
            if result.event is StepEvent.OK:
                executed += 1
            if result.event is StepEvent.HALTED:
                return StopInfo("halted", self.system.special.pc,
                                instructions=executed)
            for address, _value in result.writes:
                for watchpoint in self._watchpoints:
                    if watchpoint.hit(address):
                        return StopInfo("watchpoint", self.system.special.pc,
                                        watchpoint=watchpoint,
                                        write_address=address,
                                        instructions=executed)
        return StopInfo("budget", self.system.special.pc,
                        instructions=executed)

    # -- trace access ------------------------------------------------------------------

    def trace(self, last: Optional[int] = None) -> List[TraceEntry]:
        entries = list(self._trace)
        if last is not None:
            entries = entries[-last:]
        return entries

    def render_trace(self, last: int = 16) -> str:
        lines = [entry.render() for entry in self.trace(last)]
        return "\n".join(lines) if lines else "(trace empty)"

    def clear_trace(self) -> None:
        self._trace.clear()
