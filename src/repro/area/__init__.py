"""Synthesis area and timing model (paper section 5.2, Table 1).

The paper quantifies the cost of the fault-tolerance functions by
synthesizing the same FPU-less LEON twice on Atmel ATC25 (0.25 um CMOS):
standard, and with TMR flip-flops + 2 parity bits on the cache RAMs + 7-bit
BCH on the register file.  This package computes the same comparison from
structural counts (flip-flops, RAM bits, check bits) and per-cell area
constants calibrated to the paper's stated ratios.
"""

from repro.area.model import (
    AreaBreakdown,
    AreaModel,
    ModuleArea,
    TimingModel,
    table1,
)

__all__ = ["AreaBreakdown", "AreaModel", "ModuleArea", "TimingModel", "table1"]
