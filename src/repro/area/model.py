"""Structural area/timing model for the Table 1 synthesis comparison.

Model structure
---------------
Each logic module is ``comb_area + ff_bits * A_FF`` (standard) or
``comb_area + edc_logic + ff_bits * A_TMR`` (FT): "a TMR cell is
approximately 4 times the size of a normal flip-flop (3x flip-flops +
voter), and a non-TMR configuration uses 20% of the area for flip-flops"
(section 5.2).  The EDC logic term covers the parity/BCH encoders,
checkers and correction muxes added to each module in the FT build.

RAM areas are ``bits * per-bit area``; the FT overhead of a RAM is purely
its check-bit ratio -- (32+2)/32 for dual-parity cache RAMs, (32+7)/32 for
the BCH register file -- which is why "the overhead including ram cells is
only 39%" while the logic-only overhead is ~100%.

Calibration constants (ATC25-like, documented in EXPERIMENTS.md):

* flip-flop 100 um2, TMR cell 4x;
* cache RAM ~13 um2/bit (generated SRAM macro incl. periphery);
* register file ~41 um2/bit (three-port cell) or ~25 um2/bit per copy for
  the duplicated two-port implementation;
* voter delay 2 gate delays of a ~25-gate-delay cycle: ~8% (section 5.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.config import LeonConfig
from repro.ft.protection import ProtectionScheme

#: mm^2 per flip-flop (standard cell, 0.25 um).
A_FF = 1.0e-4
#: TMR cell area relative to one flip-flop (3 FFs + voter).
TMR_FACTOR = 4.0
#: mm^2 per single-port cache RAM bit.
A_CACHE_BIT = 1.03e-5
#: mm^2 per three-port register file bit.
A_REGFILE_BIT = 4.1e-5
#: mm^2 per two-port register file bit (each copy of the duplicated file).
A_REGFILE_2P_BIT = 2.5e-5

#: Logic modules: (combinational area mm^2, flip-flop count).
#: Sized so flip-flops are ~20% of each module's standard area and the
#: total flip-flop population is ~2500 (section 4.5).
_LOGIC_MODULES = {
    "Integer unit (+ mul/div)": (0.48, 1200),
    "Cache controllers": (0.1125, 375),
    "Peripheral units": (0.14, 600),
}

#: EDC logic added per module in the FT build (BCH encoder + two checkers
#: + correction path for the IU; parity trees for the cache controllers;
#: the EDAC unit in the memory controller, booked under peripherals).
_EDC_LOGIC = {
    "Integer unit (+ mul/div)": 0.18,
    "Cache controllers": 0.045,
    "Peripheral units": 0.075,
}

#: Gate delays: majority voter in the register-to-register path, against a
#: nominal cycle.  2 / 25 = 8% (section 5.2).
VOTER_GATE_DELAYS = 2
CYCLE_GATE_DELAYS = 25


@dataclass(frozen=True)
class ModuleArea:
    """One Table 1 row."""

    name: str
    area_mm2: float
    area_ft_mm2: float

    @property
    def increase_percent(self) -> float:
        if self.area_mm2 == 0:
            return 0.0
        return (self.area_ft_mm2 / self.area_mm2 - 1.0) * 100.0


@dataclass
class AreaBreakdown:
    """The full Table 1: per-module rows plus the total."""

    modules: List[ModuleArea]

    @property
    def total(self) -> ModuleArea:
        return ModuleArea(
            "Total",
            sum(module.area_mm2 for module in self.modules),
            sum(module.area_ft_mm2 for module in self.modules),
        )

    def logic_only(self) -> ModuleArea:
        """The 'LEON core without ram blocks' aggregate (section 5.2)."""
        logic = [module for module in self.modules if module.name in _LOGIC_MODULES]
        return ModuleArea(
            "Logic (no RAM)",
            sum(module.area_mm2 for module in logic),
            sum(module.area_ft_mm2 for module in logic),
        )

    def row(self, name: str) -> ModuleArea:
        for module in self.modules:
            if module.name == name:
                return module
        raise KeyError(name)

    def as_rows(self) -> List[Dict[str, object]]:
        rows = []
        for module in self.modules + [self.total]:
            rows.append({
                "Module": module.name,
                "Area (mm2)": round(module.area_mm2, 3),
                "Area incl. FT": round(module.area_ft_mm2, 3),
                "Increase": f"{module.increase_percent:.0f}%",
            })
        return rows


class AreaModel:
    """Computes the synthesis comparison for any pair of configurations."""

    def __init__(self, standard: Optional[LeonConfig] = None,
                 fault_tolerant: Optional[LeonConfig] = None) -> None:
        self.standard = standard or LeonConfig.standard()
        self.fault_tolerant = fault_tolerant or LeonConfig.fault_tolerant()

    # -- per-config component areas ------------------------------------------------

    @staticmethod
    def _ram_bits_cache(config: LeonConfig) -> int:
        bits = 0
        for cache in (config.icache, config.dcache):
            per_word = 32 + cache.parity.check_bits
            tag_words = cache.lines
            data_words = cache.lines * cache.words_per_line
            bits += (tag_words + data_words) * per_word
        return bits

    @staticmethod
    def _regfile_area(config: LeonConfig) -> float:
        words = config.regfile_words
        per_word = 32 + config.ft.regfile_protection.check_bits
        if config.ft.regfile_duplicated:
            return 2 * words * per_word * A_REGFILE_2P_BIT
        return words * per_word * A_REGFILE_BIT

    @staticmethod
    def _logic_module_area(name: str, config: LeonConfig) -> float:
        comb, ffs = _LOGIC_MODULES[name]
        ft = config.ft.tmr_flipflops
        ff_area = ffs * A_FF * (TMR_FACTOR if ft else 1.0)
        edc = _EDC_LOGIC[name] if _protected(config) else 0.0
        return comb + ff_area + edc

    def breakdown(self) -> AreaBreakdown:
        modules = []
        for name in _LOGIC_MODULES:
            modules.append(ModuleArea(
                name,
                self._logic_module_area(name, self.standard),
                self._logic_module_area(name, self.fault_tolerant),
            ))
        std_words = self.standard.regfile_words
        modules.append(ModuleArea(
            f"Register file ({std_words}x32)",
            self._regfile_area(self.standard),
            self._regfile_area(self.fault_tolerant),
        ))
        cache_kb = (self.standard.icache.size_bytes
                    + self.standard.dcache.size_bytes) // 1024
        modules.append(ModuleArea(
            f"Cache mem. ({cache_kb} Kbyte)",
            self._ram_bits_cache(self.standard) * A_CACHE_BIT,
            self._ram_bits_cache(self.fault_tolerant) * A_CACHE_BIT,
        ))
        return AreaBreakdown(modules)


def _protected(config: LeonConfig) -> bool:
    return (config.ft.tmr_flipflops
            or config.ft.regfile_protection is not ProtectionScheme.NONE
            or config.icache.parity is not ProtectionScheme.NONE
            or config.memory.edac)


@dataclass(frozen=True)
class TimingModel:
    """Cycle-time impact of the FT functions.

    "The timing penalty for the fault-tolerant version is the extra delay
    through the TMR voter, approximately two gate-delays or 8% of the cycle
    time."  The parity/BCH checks run in parallel with tag compare /
    execute and cost nothing.
    """

    voter_gate_delays: int = VOTER_GATE_DELAYS
    cycle_gate_delays: int = CYCLE_GATE_DELAYS

    @property
    def penalty_fraction(self) -> float:
        return self.voter_gate_delays / self.cycle_gate_delays

    def ft_frequency(self, standard_mhz: float) -> float:
        """Achievable clock of the FT build given the standard build's."""
        return standard_mhz / (1.0 + self.penalty_fraction)


def table1(standard: Optional[LeonConfig] = None,
           fault_tolerant: Optional[LeonConfig] = None) -> AreaBreakdown:
    """Convenience: the Table 1 breakdown for the default configurations."""
    return AreaModel(standard, fault_tolerant).breakdown()
