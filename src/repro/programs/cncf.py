"""CNCF: a navigation workload (paper section 6).

The original CNCF "is based on real spacecraft navigation software".  This
rebuild propagates an orbital state (2-D Kepler problem, double precision)
with a fixed-step symplectic Euler integrator -- inverse-square gravity,
square root, division -- plus an integer telemetry/housekeeping loop, and
checksums the final state bit patterns.  The mix of double-precision FP,
integer bookkeeping and moderate memory traffic mirrors the character of
on-board navigation filters.

The expected checksum is produced by a bit-exact Python mirror of the same
operation sequence (IEEE-754 double throughout, matching the FPU model).
"""

from __future__ import annotations

import math
import struct
from typing import List, Optional, Tuple

from repro.core.config import LeonConfig
from repro.errors import ConfigurationError
from repro.programs.builder import build_test_program, emit_icode_block, icode_checksum
from repro.sparc.asm import Program

#: Constant base for the straight-line code block (distinct per program).
_ICODE_BASE = 0x2B1

#: Initial orbit state: slightly eccentric orbit around a unit-mu body.
_RX0, _RY0 = 1.0, 0.0
_VX0, _VY0 = 0.0, 1.1
_DT = 0.01
_ONE = 1.0

_TELEMETRY_WORDS = 64
_TELEMETRY_STRIDE = 0x21


def _f64_bits(value: float) -> Tuple[int, int]:
    raw = struct.unpack(">Q", struct.pack(">d", value))[0]
    return (raw >> 32) & 0xFFFFFFFF, raw & 0xFFFFFFFF


def _propagate(steps: int) -> Tuple[float, float, float, float]:
    """Bit-exact mirror of the assembly integrator."""
    rx, ry, vx, vy = _RX0, _RY0, _VX0, _VY0
    for _ in range(steps):
        t_a = rx * rx
        t_b = ry * ry
        r2 = t_a + t_b
        rt = math.sqrt(r2)
        r3 = r2 * rt
        inv = _ONE / r3
        ax = -(rx * inv)
        ay = -(ry * inv)
        vx = vx + ax * _DT
        vy = vy + ay * _DT
        rx = rx + vx * _DT
        ry = ry + vy * _DT
    return rx, ry, vx, vy


def _expected_checksum(steps: int, icode_words: int) -> int:
    checksum = icode_checksum(icode_words, _ICODE_BASE)
    for value in _propagate(steps):
        high, low = _f64_bits(value)
        checksum ^= high
        checksum ^= low
    value = 0
    for _ in range(_TELEMETRY_WORDS):
        checksum ^= value
        value = (value + _TELEMETRY_STRIDE) & 0xFFFFFFFF
    return checksum & 0xFFFFFFFF


def build_cncf(
    config: Optional[LeonConfig] = None,
    *,
    iterations: int = 10,
    steps: int = 50,
    icode_words: int = 384,
) -> Tuple[Program, int]:
    """Build CNCF; returns (program, expected checksum per iteration).

    ``icode_words`` models the code footprint of the full navigation
    software around this propagation kernel.
    """
    config = config or LeonConfig.leon_express()
    if not config.has_fpu:
        raise ConfigurationError("CNCF needs an FPU (use LeonConfig.leon_express)")
    expected = _expected_checksum(steps, icode_words)

    lines: List[str] = []
    lines.append("main:")
    lines.append("    save %sp, -96, %sp")
    lines.append("    set ITER_COUNT, %i1")
    lines.append("cncf_iteration:")
    lines.append("    clr %g6")
    # Reload the initial state and constants each iteration.
    lines.append("    set cncf_constants, %o0")
    lines.append("    lddf [%o0], %f16")       # rx
    lines.append("    lddf [%o0+8], %f18")     # ry
    lines.append("    lddf [%o0+16], %f20")    # vx
    lines.append("    lddf [%o0+24], %f22")    # vy
    lines.append("    lddf [%o0+32], %f2")     # dt
    lines.append("    lddf [%o0+40], %f4")     # 1.0
    lines.append("    set STEPS, %o1")

    lines.append("cncf_step:")
    # r2 = rx*rx + ry*ry
    lines.append("    fmuld %f16, %f16, %f24")
    lines.append("    fmuld %f18, %f18, %f26")
    lines.append("    faddd %f24, %f26, %f24")
    # r3 = r2 * sqrt(r2); inv = 1 / r3
    lines.append("    fsqrtd %f24, %f26")
    lines.append("    fmuld %f24, %f26, %f26")
    lines.append("    fdivd %f4, %f26, %f28")
    # a = -r * inv  (FNEGS on the high word flips a double's sign)
    lines.append("    fmuld %f16, %f28, %f24")
    lines.append("    fmuld %f18, %f28, %f26")
    lines.append("    fnegs %f24, %f24")
    lines.append("    fnegs %f26, %f26")
    # v += a*dt ; r += v*dt
    lines.append("    fmuld %f24, %f2, %f24")
    lines.append("    faddd %f20, %f24, %f20")
    lines.append("    fmuld %f26, %f2, %f26")
    lines.append("    faddd %f22, %f26, %f22")
    lines.append("    fmuld %f20, %f2, %f24")
    lines.append("    faddd %f16, %f24, %f16")
    lines.append("    fmuld %f22, %f2, %f26")
    lines.append("    faddd %f18, %f26, %f18")
    # Telemetry: store the live state for the (simulated) downlink.
    lines.append("    set DATA, %o2")
    lines.append("    stdf %f16, [%o2]")
    lines.append("    stdf %f18, [%o2+8]")
    lines.append("    stdf %f20, [%o2+16]")
    lines.append("    stdf %f22, [%o2+24]")
    lines.append("    subcc %o1, 1, %o1")
    lines.append("    bne cncf_step")
    lines.append("    nop")

    # Fold the final state into the checksum.
    for offset in (0, 4, 8, 12, 16, 20, 24, 28):
        lines.append("    set DATA, %o2")
        lines.append(f"    ld [%o2+{offset}], %o3")
        lines.append("    xor %g6, %o3, %g6")

    # Integer housekeeping table (write then read back).
    lines.append("    set DATA, %o0")
    lines.append("    add %o0, 64, %o0")
    lines.append(f"    set {_TELEMETRY_WORDS}, %o1")
    lines.append("    clr %o2")
    lines.append("cncf_tel_write:")
    lines.append("    st %o2, [%o0]")
    lines.append(f"    add %o2, {_TELEMETRY_STRIDE}, %o2")
    lines.append("    add %o0, 4, %o0")
    lines.append("    subcc %o1, 1, %o1")
    lines.append("    bne cncf_tel_write")
    lines.append("    nop")
    lines.append("    set DATA, %o0")
    lines.append("    add %o0, 64, %o0")
    lines.append(f"    set {_TELEMETRY_WORDS}, %o1")
    lines.append("cncf_tel_read:")
    lines.append("    ld [%o0], %o3")
    lines.append("    xor %g6, %o3, %g6")
    lines.append("    add %o0, 4, %o0")
    lines.append("    subcc %o1, 1, %o1")
    lines.append("    bne cncf_tel_read")
    lines.append("    nop")

    # Code footprint of the surrounding navigation software.
    emit_icode_block(lines, icode_words, _ICODE_BASE)

    # Self-check and bookkeeping.
    lines.append("    set EXPECTED_CHECKSUM, %o0")
    lines.append("    cmp %g6, %o0")
    lines.append("    be cncf_checksum_ok")
    lines.append("    nop")
    lines.append("    set SW_ERRORS, %o1")
    lines.append("    ld [%o1], %o2")
    lines.append("    add %o2, 1, %o2")
    lines.append("    st %o2, [%o1]")
    lines.append("cncf_checksum_ok:")
    lines.append("    set CHECKSUM, %o1")
    lines.append("    st %g6, [%o1]")
    lines.append("    set ITERATIONS, %o1")
    lines.append("    ld [%o1], %o2")
    lines.append("    add %o2, 1, %o2")
    lines.append("    st %o2, [%o1]")
    lines.append("    subcc %i1, 1, %i1")
    lines.append("    bne cncf_iteration")
    lines.append("    nop")
    lines.append("    ret")
    lines.append("    restore")

    # Constant pool: rx ry vx vy dt one (doubles).
    lines.append(".align 8")
    lines.append("cncf_constants:")
    for value in (_RX0, _RY0, _VX0, _VY0, _DT, _ONE):
        high, low = _f64_bits(value)
        lines.append(f"    .word {high}, {low}")

    program = build_test_program(
        "\n".join(lines),
        config,
        name="cncf",
        extra_symbols={
            "ITER_COUNT": iterations,
            "STEPS": steps,
            "EXPECTED_CHECKSUM": expected,
        },
    )
    return program, expected
