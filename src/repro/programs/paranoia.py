"""PARANOIA: the FPU self-check program (paper section 6).

The original campaign used a PARANOIA-style floating-point test "that checks
the FPU operation".  This rebuild runs four arithmetic chains per iteration
-- a single-precision multiply/add/divide chain, a square-root chain, a
double-precision chain, and integer<->float conversion round-trips -- plus
comparison/branch checks, folding every result's bit pattern into the XOR
checksum.  The expected checksum is computed at build time with bit-exact
mirrors of the FPU's rounding behaviour.
"""

from __future__ import annotations

import math
import struct
from typing import List, Optional, Tuple

from repro.core.config import LeonConfig
from repro.errors import ConfigurationError
from repro.programs.builder import build_test_program, emit_icode_block, icode_checksum
from repro.sparc.asm import Program

#: Constant base for the straight-line code block (distinct from IUTEST's).
_ICODE_BASE = 0x3A1


def _f32(value: float) -> float:
    """Round a Python float to single precision (the FPU's write path)."""
    return struct.unpack(">f", struct.pack(">f", value))[0]


def _f32_bits(value: float) -> int:
    return struct.unpack(">I", struct.pack(">f", value))[0]


def _f64_bits(value: float) -> Tuple[int, int]:
    raw = struct.unpack(">Q", struct.pack(">d", value))[0]
    return (raw >> 32) & 0xFFFFFFFF, raw & 0xFFFFFFFF


#: Single-precision chain constants.
_A, _B, _C, _D = 1.5, 1.25, 0.5, 1.125
#: Double-precision chain constants.
_E, _F = 0.7071067811865476, 1.0000152587890625
#: Conversion test integers.
_CONV_INTS = (0, 1, -1, 12345, -67890, 2**20 + 3)


def _expected_checksum(chain1: int, chain2: int, chain3: int,
                       icode_words: int) -> int:
    checksum = icode_checksum(icode_words, _ICODE_BASE)
    # Chain 1: x = ((x * b) + c) / d, single precision.
    x = _f32(_A)
    for _ in range(chain1):
        x = _f32(x * _f32(_B))
        x = _f32(x + _f32(_C))
        x = _f32(x / _f32(_D))
    checksum ^= _f32_bits(x)
    # Chain 2: y = sqrt(y + b), single precision.
    y = _f32(_A)
    for _ in range(chain2):
        y = _f32(y + _f32(_B))
        y = _f32(math.sqrt(y))
    checksum ^= _f32_bits(y)
    # Chain 3: z = z * f + e, double precision.
    z = _E
    for _ in range(chain3):
        z = z * _F
        z = z + _E
    high, low = _f64_bits(z)
    checksum ^= high
    checksum ^= low
    # Conversions: int -> single -> int and int -> single -> double -> int.
    for value in _CONV_INTS:
        single = _f32(float(value))
        checksum ^= int(single) & 0xFFFFFFFF
        double = float(single)
        checksum ^= int(double) & 0xFFFFFFFF
    return checksum & 0xFFFFFFFF


def build_paranoia(
    config: Optional[LeonConfig] = None,
    *,
    iterations: int = 10,
    chain1: int = 40,
    chain2: int = 20,
    chain3: int = 40,
    icode_words: int = 768,
) -> Tuple[Program, int]:
    """Build PARANOIA; returns (program, expected checksum per iteration).

    ``icode_words`` sizes the straight-line code block modelling the real
    PARANOIA's large instruction footprint (it occupies a substantial part
    of the I-cache, which is what gives PARANOIA a measurable instruction
    cache cross-section in Table 2).
    """
    config = config or LeonConfig.leon_express()
    if not config.has_fpu:
        raise ConfigurationError("PARANOIA needs an FPU (use LeonConfig.leon_express)")
    expected = _expected_checksum(chain1, chain2, chain3, icode_words)

    lines: List[str] = []
    lines.append("main:")
    lines.append("    save %sp, -96, %sp")
    lines.append("    set ITER_COUNT, %i1")
    lines.append("par_iteration:")
    lines.append("    clr %g6")
    lines.append("    set par_constants, %o0")
    lines.append("    ldf [%o0], %f0")        # a
    lines.append("    ldf [%o0+4], %f1")      # b
    lines.append("    ldf [%o0+8], %f2")      # c
    lines.append("    ldf [%o0+12], %f3")     # d
    lines.append("    lddf [%o0+16], %f8")    # e (double)
    lines.append("    lddf [%o0+24], %f10")   # f (double)

    # Chain 1 (single): f4 = ((f4 * b) + c) / d.
    lines.append("    fmovs %f0, %f4")
    lines.append("    set CHAIN1, %o1")
    lines.append("par_chain1:")
    lines.append("    fmuls %f4, %f1, %f4")
    lines.append("    fadds %f4, %f2, %f4")
    lines.append("    fdivs %f4, %f3, %f4")
    lines.append("    subcc %o1, 1, %o1")
    lines.append("    bne par_chain1")
    lines.append("    nop")
    _fold_single(lines, "%f4")

    # Chain 2 (single): f5 = sqrt(f5 + b).
    lines.append("    fmovs %f0, %f5")
    lines.append("    set CHAIN2, %o1")
    lines.append("par_chain2:")
    lines.append("    fadds %f5, %f1, %f5")
    lines.append("    fsqrts %f5, %f5")
    lines.append("    subcc %o1, 1, %o1")
    lines.append("    bne par_chain2")
    lines.append("    nop")
    _fold_single(lines, "%f5")

    # Chain 3 (double): f12 = f12 * f + e.
    lines.append("    fmovs %f8, %f12")
    lines.append("    fmovs %f9, %f13")
    lines.append("    set CHAIN3, %o1")
    lines.append("par_chain3:")
    lines.append("    fmuld %f12, %f10, %f12")
    lines.append("    faddd %f12, %f8, %f12")
    lines.append("    subcc %o1, 1, %o1")
    lines.append("    bne par_chain3")
    lines.append("    nop")
    _fold_double(lines, "%f12")

    # Conversions.
    for value in _CONV_INTS:
        lines.append(f"    set {value & 0xFFFFFFFF}, %o2")
        lines.append("    set DATA, %o3")
        lines.append("    st %o2, [%o3]")
        lines.append("    ldf [%o3], %f6")
        lines.append("    fitos %f6, %f6")  # int -> single
        lines.append("    fstoi %f6, %f7")  # single -> int
        lines.append("    stf %f7, [%o3]")
        lines.append("    ld [%o3], %o2")
        lines.append("    xor %g6, %o2, %g6")
        lines.append("    fstod %f6, %f14")  # single -> double
        lines.append("    fdtoi %f14, %f7")  # double -> int
        lines.append("    stf %f7, [%o3]")
        lines.append("    ld [%o3], %o2")
        lines.append("    xor %g6, %o2, %g6")

    # Comparison checks: b > c, e < f (as doubles), a == a.
    _compare_check(lines, "fcmps %f1, %f2", "fbg", "cmp1")
    _compare_check(lines, "fcmpd %f8, %f10", "fbl", "cmp2")
    _compare_check(lines, "fcmps %f0, %f0", "fbe", "cmp3")

    # Straight-line code footprint (the real PARANOIA is a large program).
    emit_icode_block(lines, icode_words, _ICODE_BASE)

    # Self-check and bookkeeping.
    lines.append("    set EXPECTED_CHECKSUM, %o0")
    lines.append("    cmp %g6, %o0")
    lines.append("    be par_checksum_ok")
    lines.append("    nop")
    _count_sw_error(lines)
    lines.append("par_checksum_ok:")
    lines.append("    set CHECKSUM, %o1")
    lines.append("    st %g6, [%o1]")
    lines.append("    set ITERATIONS, %o1")
    lines.append("    ld [%o1], %o2")
    lines.append("    add %o2, 1, %o2")
    lines.append("    st %o2, [%o1]")
    lines.append("    subcc %i1, 1, %i1")
    lines.append("    bne par_iteration")
    lines.append("    nop")
    lines.append("    ret")
    lines.append("    restore")

    # Constant pool.
    e_high, e_low = _f64_bits(_E)
    f_high, f_low = _f64_bits(_F)
    lines.append(".align 8")
    lines.append("par_constants:")
    lines.append(f"    .word {_f32_bits(_A)}, {_f32_bits(_B)}, "
                 f"{_f32_bits(_C)}, {_f32_bits(_D)}")
    lines.append(f"    .word {e_high}, {e_low}, {f_high}, {f_low}")

    program = build_test_program(
        "\n".join(lines),
        config,
        name="paranoia",
        extra_symbols={
            "ITER_COUNT": iterations,
            "CHAIN1": chain1,
            "CHAIN2": chain2,
            "CHAIN3": chain3,
            "EXPECTED_CHECKSUM": expected,
        },
    )
    return program, expected


def _fold_single(lines: List[str], freg: str) -> None:
    lines.append("    set DATA, %o3")
    lines.append(f"    stf {freg}, [%o3]")
    lines.append("    ld [%o3], %o2")
    lines.append("    xor %g6, %o2, %g6")


def _fold_double(lines: List[str], freg: str) -> None:
    lines.append("    set DATA, %o3")
    lines.append(f"    stdf {freg}, [%o3]")
    lines.append("    ld [%o3], %o2")
    lines.append("    xor %g6, %o2, %g6")
    lines.append("    ld [%o3+4], %o2")
    lines.append("    xor %g6, %o2, %g6")


def _compare_check(lines: List[str], cmp_instr: str, branch: str, tag: str) -> None:
    lines.append(f"    {cmp_instr}")
    lines.append("    nop")  # fcmp / branch interlock slot
    lines.append(f"    {branch} par_{tag}_ok")
    lines.append("    nop")
    _count_sw_error(lines)
    lines.append(f"par_{tag}_ok:")


def _count_sw_error(lines: List[str]) -> None:
    lines.append("    set SW_ERRORS, %o1")
    lines.append("    ld [%o1], %o2")
    lines.append("    add %o2, 1, %o2")
    lines.append("    st %o2, [%o1]")
