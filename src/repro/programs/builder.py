"""Runtime scaffolding for test programs: trap table, crt0, result area.

Every test program is assembled as::

    <base>        trap table   (256 entries x 16 bytes)
    <base+4K>     _start       (crt0: WIM/TBR/PSR setup, stack, call main)
    ...           main         (the program body)

and reports through a fixed result area in SRAM:

    RESULT+0x00  EXIT_FLAG    EXIT_MAGIC when main returned normally
    RESULT+0x04  TRAP_TT      tt of the first unexpected trap (if any)
    RESULT+0x08  TRAP_FLAG    1 when an unexpected trap was taken
    RESULT+0x0C  CHECKSUM     the program's running checksum
    RESULT+0x10  ITERATIONS   completed self-check iterations
    RESULT+0x14  SW_ERRORS    self-check mismatches the program detected

Unexpected traps park the processor on the ``_trap_spin`` loop, which the
harness recognizes; this mirrors the paper's campaign where "error traps or
software failures" are the observable failure modes (section 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.config import LeonConfig
from repro.core.system import LeonSystem, RunResult
from repro.sparc.asm import Program, assemble

#: Value written to EXIT_FLAG by a normal main return.
EXIT_MAGIC = 0x900DD00D

#: Trap-table size: 256 entries of 16 bytes.
TRAP_TABLE_BYTES = 0x1000


@dataclass(frozen=True)
class TestLayout:
    """Fixed addresses a test program and its harness agree on."""

    base: int  # program load address (= trap table base)
    result: int  # result area base
    data: int  # scratch data area for workloads
    stack_top: int

    @classmethod
    def for_config(cls, config: LeonConfig) -> "TestLayout":
        sram = config.memory.sram_base
        size = config.memory.sram_bytes
        return cls(
            base=sram,
            result=sram + size // 2,
            data=sram + size // 2 + 0x100,
            stack_top=sram + size - 64,
        )

    @property
    def scrub_base(self) -> int:
        """Cache-aligned base for IUTEST's whole-cache scrub region."""
        return self.base + (self.stack_top - self.base) // 4 * 3 & ~0xFFFF

    @property
    def symbols(self) -> Dict[str, int]:
        return {
            "RESULT": self.result,
            "EXIT_FLAG": self.result + 0x00,
            "TRAP_TT": self.result + 0x04,
            "TRAP_FLAG": self.result + 0x08,
            "CHECKSUM": self.result + 0x0C,
            "ITERATIONS": self.result + 0x10,
            "SW_ERRORS": self.result + 0x14,
            "INIT_DONE": self.result + 0x18,
            "DATA": self.data,
            "WRITE_BASE": self.data + 0x100,
            "SCRUB_BASE": self.scrub_base,
            "STACK_TOP": self.stack_top,
            "EXIT_MAGIC": EXIT_MAGIC,
        }


def _window_handlers_source(nwindows: int) -> str:
    """The classic SPARC V8 window overflow/underflow trap handlers.

    Tasking kernels rely on these to spill/fill register windows to the
    stack (section 4.8 notes the side benefit: the spill traffic scrubs
    latent register-file errors).  The overflow handler rotates WIM right,
    steps into the oldest window and flushes its locals+ins to its own
    stack; the underflow handler rotates WIM left and reloads.
    """
    spills = "\n".join(
        f"    std %l{2 * i}, [%sp + {8 * i}]" for i in range(4)
    ) + "\n" + "\n".join(
        f"    std %i{2 * i}, [%sp + {32 + 8 * i}]" for i in range(4)
    )
    fills = "\n".join(
        f"    ldd [%sp + {8 * i}], %l{2 * i}" for i in range(4)
    ) + "\n" + "\n".join(
        f"    ldd [%sp + {32 + 8 * i}], %i{2 * i}" for i in range(4)
    )
    return f"""
_window_overflow:
    ! CWP is the invalid window.  Compute the rotated-right WIM in a local
    ! of *this* window, disable window traps, step into the oldest window
    ! and flush it to its stack, come back, then install the new WIM --
    ! the classic LEON/BCC handler sequence.
    rd %wim, %l3
    sll %l3, {nwindows - 1}, %l4
    srl %l3, 1, %l3
    or %l3, %l4, %l3
    wr %g0, %wim            ! window traps off while we move around
    nop
    nop
    nop
    save                    ! into the window to be flushed
{spills}
    restore                 ! back to the trap window (%l3 still live)
    wr %l3, %wim
    nop
    nop
    nop
    jmp [%l1]
    rett [%l2]

_window_underflow:
    ! Rotate WIM left, reload the window being restored into.
    rd %wim, %l3
    srl %l3, {nwindows - 1}, %l4
    sll %l3, 1, %l3
    or %l3, %l4, %l3
    wr %g0, %wim
    nop
    nop
    nop
    restore                 ! to the window that executed the restore
    restore                 ! into the window to reload
{fills}
    save
    save                    ! back to the trap window
    wr %l3, %wim
    nop
    nop
    nop
    jmp [%l1]
    rett [%l2]
"""


def _trap_table_source(handlers: Optional[Dict[int, str]] = None) -> str:
    """256 trap entries; unhandled traps record their tt and spin."""
    handlers = handlers or {}
    lines = ["trap_table:"]
    for tt in range(256):
        target = handlers.get(tt, "_unexpected_trap")
        lines.append(f"    mov {tt}, %l3")
        lines.append(f"    ba {target}")
        lines.append("    nop")
        lines.append("    nop")
    return "\n".join(lines)


_RUNTIME = """
_start:
    set _wim_init, %g1
    wr %g1, %wim
    set trap_table, %g1
    wr %g1, %tbr
    set _psr_init, %g1
    wr %g1, %psr
    nop
    nop
    nop
    set STACK_TOP, %sp
    call main
    nop
    ! main returned: flag a clean exit
    set EXIT_MAGIC, %g1
    set EXIT_FLAG, %g2
    st %g1, [%g2]
_exit:
    ba _exit
    nop

_unexpected_trap:
    set TRAP_TT, %l4
    st %l3, [%l4]
    set TRAP_FLAG, %l4
    mov 1, %l5
    st %l5, [%l4]
_trap_spin:
    ba _trap_spin
    nop
"""


def build_test_program(
    body: str,
    config: LeonConfig,
    *,
    name: str = "test",
    handlers: Optional[Dict[int, str]] = None,
    window_handlers: bool = False,
    extra_symbols: Optional[Dict[str, int]] = None,
) -> Program:
    """Assemble trap table + crt0 + ``body`` (which must define ``main:``).

    With ``window_handlers=True`` the runtime installs the classic SPARC
    window overflow/underflow spill/fill handlers and marks one window
    invalid in WIM, so programs may nest calls arbitrarily deep.
    """
    layout = TestLayout.for_config(config)
    psr_init = (1 << 7) | (1 << 5)  # S = 1, ET = 1
    if config.has_fpu:
        psr_init |= 1 << 12  # EF
    symbols = dict(layout.symbols)
    symbols["_psr_init"] = psr_init
    handlers = dict(handlers or {})
    pieces = []
    if window_handlers:
        handlers.setdefault(0x05, "_window_overflow")
        handlers.setdefault(0x06, "_window_underflow")
        pieces.append(_window_handlers_source(config.nwindows))
        # CWP starts at 0 and save decrements: with the boundary at window
        # 1, exactly nwindows-1 frames fit before the first spill.
        symbols["_wim_init"] = 1 << 1
    else:
        symbols.setdefault("_wim_init", 0)
    if extra_symbols:
        symbols.update(extra_symbols)
    source = "\n".join([_trap_table_source(handlers)] + pieces
                       + [_RUNTIME, body])
    return assemble(source, base=layout.base, name=name, symbols=symbols)


def emit_icode_block(lines, words: int, const_base: int = 0x0F0F) -> None:
    """Unrolled straight-line code block: one xor per I-cache word.

    Models the code footprint of a large self-checking program (the real
    IUTEST/PARANOIA executables are far bigger than these rebuilt kernels);
    every executed word contributes to the checksum, so an SEU in any
    occupied I-cache line is either corrected (parity -> forced miss) or
    caught by the final compare.
    """
    for i in range(words):
        lines.append(f"    xor %g6, {(const_base + i) & 0xFFF}, %g6")


def icode_checksum(words: int, const_base: int = 0x0F0F) -> int:
    """The XOR contribution of :func:`emit_icode_block`."""
    checksum = 0
    for i in range(words):
        checksum ^= (const_base + i) & 0xFFF
    return checksum


@dataclass
class HarnessResult:
    """Post-run interpretation of the result area."""

    run: RunResult
    exited: bool
    trapped: bool
    trap_tt: int
    checksum: int
    iterations: int
    sw_errors: int

    @property
    def failed(self) -> bool:
        """An observable failure: error trap, error mode, or self-check
        mismatch (the paper's 'error traps or software failures')."""
        return self.trapped or self.sw_errors > 0 or \
            self.run.halted.value == "error-mode"


class ProgramHarness:
    """Loads a test program and interprets its result area after a run."""

    def __init__(self, system: LeonSystem, program: Program) -> None:
        self.system = system
        self.program = program
        self.layout = TestLayout.for_config(system.config)
        system.load_program(program)
        # The image starts with the trap table; execution starts at _start.
        entry = program.address_of("_start")
        system.special.pc = entry
        system.special.npc = entry + 4

    def run(self, max_instructions: int = 2_000_000) -> HarnessResult:
        spin = self.program.symbols.get("_trap_spin")
        exit_label = self.program.symbols.get("_exit")

        def stop(result) -> bool:
            return self.system.special.pc in (spin, exit_label)

        run = self.system.run(max_instructions, stop_when=stop)
        return self.read_results(run)

    def read_results(self, run: RunResult) -> HarnessResult:
        read = self.system.read_word
        result = self.layout.result
        return HarnessResult(
            run=run,
            exited=read(result + 0x00) == EXIT_MAGIC,
            trapped=read(result + 0x08) == 1,
            trap_tt=read(result + 0x04),
            checksum=read(result + 0x0C),
            iterations=read(result + 0x10),
            sw_errors=read(result + 0x14),
        )
