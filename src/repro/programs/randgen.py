"""Seeded random self-checking straight-line programs.

Campaign workload diversity beyond the three paper programs: a seeded
generator emits a straight-line block of random ALU operations over the
local/out registers, folds every result into the ``%g6`` checksum, and
self-checks against the expected value -- which a Python mirror of the
SPARC semantics computes at build time.  Same discipline as IUTEST
(re-initialize, compute, compare, tally SW_ERRORS/ITERATIONS), so random
programs drop into campaigns unchanged via ``--program random:<seed>``.

Three differential validations guard the generator:

* **round-trip**: every generated instruction word is disassembled and
  re-assembled at build time; a mismatch against the original encoding
  fails the build (the assembler and disassembler check each other);
* **def/use intent**: the generator records which architectural registers
  each emitted operation reads and writes; the decoder's ``sources`` /
  ``defs`` metadata -- the exact facts the static analyzer
  (:mod:`repro.analysis.program`) builds its liveness on -- must agree
  instruction for instruction, or the build fails;
* **mirror-vs-machine**: the build-time expected checksum must match what
  the simulated processor computes -- any divergence shows up as
  ``SW_ERRORS`` in a fault-free run (asserted by the test suite).
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.config import LeonConfig
from repro.errors import ConfigurationError
from repro.programs.builder import build_test_program
from repro.sparc.asm import Program, assemble
from repro.sparc.decode import decode
from repro.sparc.disasm import disassemble

_M = 0xFFFFFFFF

#: Working registers: locals plus the outs not used by the self-check
#: epilogue (%o0..%o2 are its scratch, mirroring IUTEST's convention).
_REGS = [f"%l{i}" for i in range(8)] + [f"%o{i}" for i in range(3, 6)]


def _signed(value: int) -> int:
    return value - (1 << 32) if value & 0x80000000 else value


def _reg_number(name: str) -> int:
    """Architectural register number of ``%g/o/l/i<n>``."""
    base = {"g": 0, "o": 8, "l": 16, "i": 24}[name[1]]
    return base + int(name[2:])


#: Trap-free ALU operations and their Python mirrors.  Division is
#: excluded (divide-by-zero traps); the shift group takes an immediate
#: shift count and the others either an immediate (simm13, kept
#: non-negative) or a register operand.
_ALU_MIRROR: Dict[str, Callable[[int, int], int]] = {
    "add": lambda a, b: (a + b) & _M,
    "sub": lambda a, b: (a - b) & _M,
    "and": lambda a, b: a & b,
    "andn": lambda a, b: a & ~b & _M,
    "or": lambda a, b: a | b,
    "orn": lambda a, b: (a | ~b) & _M,
    "xor": lambda a, b: a ^ b,
    "xnor": lambda a, b: ~(a ^ b) & _M,
    "umul": lambda a, b: (a * b) & _M,
    "smul": lambda a, b: (_signed(a) * _signed(b)) & _M,
}
_SHIFT_MIRROR: Dict[str, Callable[[int, int], int]] = {
    "sll": lambda a, sh: (a << sh) & _M,
    "srl": lambda a, sh: a >> sh,
    "sra": lambda a, sh: (_signed(a) >> sh) & _M,
}
_OP_NAMES = tuple(sorted(_ALU_MIRROR)) + tuple(sorted(_SHIFT_MIRROR))


#: Per-instruction def/use intent: (uses, defs) architectural register
#: numbers, in emission order (one entry per generated line).
DefUse = Tuple[Tuple[int, ...], Tuple[int, ...]]


def _generate_ops(rng: random.Random, count: int,
                  state: Dict[str, int]) -> Tuple[List[str], int,
                                                  List[DefUse]]:
    """Random op lines, their checksum, and per-line def/use intent.

    *state* maps register names to their initialized values; the mirror
    updates it op by op, folding each destination value into the
    checksum exactly like the emitted ``xor %g6, rd, %g6``.  The intent
    list records, line for line, which architectural registers the
    generator *meant* each instruction to read and write --
    :func:`validate_defuse` holds the decoder to it.
    """
    lines: List[str] = []
    intent: List[DefUse] = []
    checksum = 0
    for _ in range(count):
        op = rng.choice(_OP_NAMES)
        rs1 = rng.choice(_REGS)
        rd = rng.choice(_REGS)
        if op in _SHIFT_MIRROR:
            shift = rng.randrange(32)
            lines.append(f"    {op} {rs1}, {shift}, {rd}")
            intent.append(((_reg_number(rs1),), (_reg_number(rd),)))
            result = _SHIFT_MIRROR[op](state[rs1], shift)
        elif rng.random() < 0.5:
            imm = rng.randrange(4096)  # non-negative simm13
            lines.append(f"    {op} {rs1}, {imm}, {rd}")
            intent.append(((_reg_number(rs1),), (_reg_number(rd),)))
            result = _ALU_MIRROR[op](state[rs1], imm)
        else:
            rs2 = rng.choice(_REGS)
            lines.append(f"    {op} {rs1}, {rs2}, {rd}")
            intent.append(((_reg_number(rs1), _reg_number(rs2)),
                           (_reg_number(rd),)))
            result = _ALU_MIRROR[op](state[rs1], state[rs2])
        state[rd] = result
        lines.append(f"    xor %g6, {rd}, %g6")
        intent.append(((6, _reg_number(rd)), (6,)))
        checksum ^= result
    return lines, checksum, intent


def validate_roundtrip(op_lines: List[str], *,
                       base: int = 0x40000000) -> Program:
    """Assemble *op_lines*, then disassemble and re-assemble every word.

    Any encoding the disassembler cannot reproduce exactly fails the
    build -- the generated program is only trusted when the assembler and
    disassembler agree on every instruction.  Returns the assembled
    block (for tests).
    """
    block = assemble("\n".join(op_lines), base, name="randgen-block")
    for index, word in enumerate(block.words):
        pc = base + 4 * index
        text = disassemble(word, pc)
        again = assemble(text, pc, name="randgen-roundtrip")
        if again.words != [word]:
            raise ConfigurationError(
                f"randgen round-trip mismatch at +{4 * index:#x}: "
                f"{word:#010x} -> {text!r} -> "
                f"{again.words[0]:#010x}")
    return block


def validate_defuse(op_lines: List[str], intent: List[DefUse], *,
                    base: int = 0x40000000) -> None:
    """Hold the decoder's def/use metadata to the generator's intent.

    The static analyzer's liveness is built on ``Instr.sources`` /
    ``Instr.defs``; the generator knows independently which registers
    each emitted op reads and writes.  Any disagreement means one side
    mis-models an instruction, and the program cannot be trusted as a
    campaign workload -- the build fails.  Register *sets* are compared
    (``add %l1, %l1, %l2`` reads one register however it is drawn).
    """
    block = assemble("\n".join(op_lines), base, name="randgen-block")
    if len(block.words) != len(intent):
        raise ConfigurationError(
            f"randgen def/use intent covers {len(intent)} instructions "
            f"but the block assembled to {len(block.words)}")
    for index, (word, (uses, defs)) in enumerate(zip(block.words, intent)):
        instr = decode(word)
        if (set(instr.sources) != set(uses)
                or set(instr.defs) != set(defs)):
            raise ConfigurationError(
                f"randgen def/use mismatch at +{4 * index:#x} "
                f"({op_lines[index].strip()!r}): generator intended "
                f"uses={sorted(set(uses))} defs={sorted(set(defs))}, "
                f"decoder reports uses={sorted(set(instr.sources))} "
                f"defs={sorted(set(instr.defs))}")


def build_random(
    config: Optional[LeonConfig] = None,
    *,
    seed: int = 0,
    iterations: int = 10,
    ops: int = 96,
) -> Tuple[Program, int]:
    """Build a seeded random program; returns (program, expected checksum).

    Every iteration re-initializes the working registers from
    seed-derived constants and replays the same straight-line block, so
    the per-iteration checksum is constant and any storage corruption
    along the register/ALU/icache path shows up as a self-check mismatch.
    """
    config = config or LeonConfig.fault_tolerant()
    if ops <= 0:
        raise ConfigurationError("randgen needs at least one operation")
    rng = random.Random(seed)
    init = {reg: rng.getrandbits(32) for reg in _REGS}
    op_lines, expected, intent = _generate_ops(rng, ops, dict(init))
    validate_roundtrip(op_lines)
    validate_defuse(op_lines, intent)

    lines: List[str] = []
    lines.append("main:")
    lines.append("    save %sp, -96, %sp")
    lines.append("    set ITER_COUNT, %i1")
    lines.append("rand_iteration:")
    lines.append("    clr %g6")
    for reg in _REGS:
        lines.append(f"    set {init[reg]}, {reg}")
    lines.extend(op_lines)
    # Self-check: compare against the mirror's expected checksum.
    lines.append("    set EXPECTED_CHECKSUM, %o0")
    lines.append("    cmp %g6, %o0")
    lines.append("    be rand_checksum_ok")
    lines.append("    nop")
    lines.append("    set SW_ERRORS, %o1")
    lines.append("    ld [%o1], %o2")
    lines.append("    add %o2, 1, %o2")
    lines.append("    st %o2, [%o1]")
    lines.append("rand_checksum_ok:")
    lines.append("    set CHECKSUM, %o1")
    lines.append("    st %g6, [%o1]")
    lines.append("    set ITERATIONS, %o1")
    lines.append("    ld [%o1], %o2")
    lines.append("    add %o2, 1, %o2")
    lines.append("    st %o2, [%o1]")
    lines.append("    subcc %i1, 1, %i1")
    lines.append("    bne rand_iteration")
    lines.append("    nop")
    lines.append("    ret")
    lines.append("    restore")

    program = build_test_program(
        "\n".join(lines),
        config,
        name=f"random-{seed}",
        extra_symbols={
            "ITER_COUNT": iterations,
            "EXPECTED_CHECKSUM": expected,
        },
    )
    return program, expected
