"""IUTEST: the register-file / cache scrubbing self-test (paper section 6).

IUTEST "continuously checks the register file and caches memories for
errors".  This rebuild exercises, every iteration:

* the **register file**: writes a distinct pattern into every testable
  register of every window (globals, locals/outs across a full window walk)
  and folds every read-back into a running XOR checksum;
* the **data cache**: a *scrub region* sized to the whole data cache is
  initialized once and then re-read every iteration -- reads are what
  detect parity errors (a rewrite would silently mask them), so this is the
  access pattern that maximizes the measured cross-section, as the real
  IUTEST did; a small separate region exercises the write path;
* the **instruction cache**: straight-line execution through an unrolled
  code block sized to occupy most I-cache lines.

The expected checksum is computed by the generator at build time, so a
single compare per iteration detects any *undetected* (escaped) storage
error, while corrected errors stay invisible to software -- exactly the
paper's self-checking discipline.  Detected mismatches increment SW_ERRORS.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.config import LeonConfig
from repro.programs.builder import build_test_program
from repro.sparc.asm import Program

#: Registers patrolled in the *current* window: globals g1..g5 (g6/g7 are
#: the checksum accumulator and pattern seed) and the locals.  The outs are
#: the program's own working registers (memory phase, self-check), so they
#: are excluded from the latent patrol -- a scrubber cannot patrol its own
#: scratch space.  Window-walk phases patrol the other windows' locals/outs.
_PHASE_A_REGS = (
    [f"%g{i}" for i in range(1, 6)]
    + [f"%l{i}" for i in range(8)]
)

_WALK_REGS = [f"%l{i}" for i in range(8)] + [f"%o{i}" for i in range(6)]

_SEED = 0x5A5A0000
_SCRUB_INIT = 0x1000
_SCRUB_STRIDE = 0x777
_WRITE_INIT = 0x2000
_WRITE_STRIDE = 0x123
_WRITE_WORDS = 64
_ICODE_CONST = 0x0F0F


def _u32(value: int) -> int:
    return value & 0xFFFFFFFF


def _pattern(depth: int, slot: int) -> int:
    """The constant added to the seed for window depth / register slot."""
    return depth * 256 + slot * 8 + 1


def _expected_checksum(walk_depth: int, scrub_words: int, icode_words: int) -> int:
    checksum = 0
    for slot, _reg in enumerate(_PHASE_A_REGS):
        checksum ^= _u32(_SEED + _pattern(0, slot))
    for depth in range(1, walk_depth + 1):
        for slot, _reg in enumerate(_WALK_REGS):
            checksum ^= _u32(_SEED + _pattern(depth, slot))
    value = _SCRUB_INIT
    for _ in range(scrub_words):
        checksum ^= value
        value = _u32(value + _SCRUB_STRIDE)
    value = _WRITE_INIT
    for _ in range(_WRITE_WORDS):
        checksum ^= value
        value = _u32(value + _WRITE_STRIDE)
    for i in range(icode_words):
        checksum ^= (_ICODE_CONST + i) & 0xFFF
    return checksum


def _register_init_phase(lines: List[str], walk_depth: int) -> None:
    """One-time pattern installation (before the patrol loop starts)."""
    for slot, reg in enumerate(_PHASE_A_REGS):
        lines.append(f"    add %g7, {_pattern(0, slot)}, {reg}")
    for depth in range(1, walk_depth + 1):
        lines.append("    save %sp, -96, %sp")
        for slot, reg in enumerate(_WALK_REGS):
            lines.append(f"    add %g7, {_pattern(depth, slot)}, {reg}")
    for _depth in range(walk_depth, 0, -1):
        lines.append("    restore")


def _register_phase(lines: List[str], walk_depth: int) -> None:
    """The patrol pass: *read first* (check), then rewrite the pattern.

    Reading before rewriting is what makes IUTEST a register-file checker:
    an SEU that landed any time since the previous pass is still there to
    be read (and corrected by the hardware, counting an RFE) instead of
    being silently overwritten.
    """
    # Current window: read-back, then refresh.
    for reg in _PHASE_A_REGS:
        lines.append(f"    xor %g6, {reg}, %g6")
    for slot, reg in enumerate(_PHASE_A_REGS):
        lines.append(f"    add %g7, {_pattern(0, slot)}, {reg}")
    # Window walk: in each window, read-back then refresh before moving on.
    for depth in range(1, walk_depth + 1):
        lines.append("    save %sp, -96, %sp")
        for reg in _WALK_REGS:
            lines.append(f"    xor %g6, {reg}, %g6")
        for slot, reg in enumerate(_WALK_REGS):
            lines.append(f"    add %g7, {_pattern(depth, slot)}, {reg}")
    for _depth in range(walk_depth, 0, -1):
        lines.append("    restore")


def _scrub_init(lines: List[str]) -> None:
    """One-time initialization of the scrub region (the region is
    *read-only* afterwards: reads detect, rewrites would mask)."""
    lines.append("    set SCRUB_BASE, %o0")
    lines.append("    set SCRUB_WORDS, %o1")
    lines.append(f"    set {_SCRUB_INIT}, %o2")
    lines.append("iutest_scrub_init:")
    lines.append("    st %o2, [%o0]")
    lines.append(f"    set {_SCRUB_STRIDE}, %o3")
    lines.append("    add %o2, %o3, %o2")
    lines.append("    add %o0, 4, %o0")
    lines.append("    subcc %o1, 1, %o1")
    lines.append("    bne iutest_scrub_init")
    lines.append("    nop")


def _memory_phase(lines: List[str]) -> None:
    # The scrub pass: read-only sweep over a whole-cache-sized region.
    lines.append("iutest_scrub_read:")
    lines.append("    set SCRUB_BASE, %o0")
    lines.append("    set SCRUB_WORDS, %o1")
    lines.append("iutest_scrub_loop:")
    lines.append("    ld [%o0], %o3")
    lines.append("    xor %g6, %o3, %g6")
    lines.append("    add %o0, 4, %o0")
    lines.append("    subcc %o1, 1, %o1")
    lines.append("    bne iutest_scrub_loop")
    lines.append("    nop")
    # Write-path exercise: a small region written and read back every pass.
    lines.append("    set WRITE_BASE, %o0")
    lines.append(f"    set {_WRITE_WORDS}, %o1")
    lines.append(f"    set {_WRITE_INIT}, %o2")
    lines.append("iutest_write_loop:")
    lines.append("    st %o2, [%o0]")
    lines.append(f"    add %o2, {_WRITE_STRIDE}, %o2")
    lines.append("    add %o0, 4, %o0")
    lines.append("    subcc %o1, 1, %o1")
    lines.append("    bne iutest_write_loop")
    lines.append("    nop")
    lines.append("    set WRITE_BASE, %o0")
    lines.append(f"    set {_WRITE_WORDS}, %o1")
    lines.append("iutest_wread_loop:")
    lines.append("    ld [%o0], %o3")
    lines.append("    xor %g6, %o3, %g6")
    lines.append("    add %o0, 4, %o0")
    lines.append("    subcc %o1, 1, %o1")
    lines.append("    bne iutest_wread_loop")
    lines.append("    nop")


def _icode_phase(lines: List[str], icode_words: int) -> None:
    # Straight-line code: one xor per I-cache word touched.
    for i in range(icode_words):
        lines.append(f"    xor %g6, {(_ICODE_CONST + i) & 0xFFF}, %g6")


def build_iutest(
    config: Optional[LeonConfig] = None,
    *,
    iterations: int = 10,
    scrub_words: Optional[int] = None,
    icode_words: Optional[int] = None,
    walk_depth: Optional[int] = None,
) -> Tuple[Program, int]:
    """Build IUTEST; returns (program, expected checksum per iteration).

    ``scrub_words`` defaults to the full data-cache capacity and
    ``icode_words`` to ~80 % of the instruction-cache capacity, so the test
    patrols (nearly) every cache RAM cell -- which is what makes IUTEST the
    highest-cross-section program in Table 2.  ``walk_depth`` defaults to
    nwindows - 2, covering every register window except the runtime's two
    anchor windows.
    """
    config = config or LeonConfig.fault_tolerant()
    if walk_depth is None:
        walk_depth = config.nwindows - 2
    if scrub_words is None:
        scrub_words = config.dcache.size_bytes // 4
    if icode_words is None:
        icode_words = (config.icache.size_bytes // 4) * 4 // 5
    expected = _expected_checksum(walk_depth, scrub_words, icode_words)

    lines: List[str] = []
    lines.append("main:")
    lines.append("    save %sp, -96, %sp")
    lines.append("    set ITER_COUNT, %i1")
    lines.append(f"    set {_SEED}, %g7")
    # One-time setup (guarded so a restarted main does not redo it):
    # install the register patterns and initialize the scrub region.
    lines.append("    set INIT_DONE, %o4")
    lines.append("    ld [%o4], %o5")
    lines.append("    cmp %o5, 1")
    lines.append("    be iutest_iteration")
    lines.append("    nop")
    _register_init_phase(lines, walk_depth)
    _scrub_init(lines)
    lines.append("    set INIT_DONE, %o4")
    lines.append("    mov 1, %o5")
    lines.append("    st %o5, [%o4]")
    lines.append("iutest_iteration:")
    lines.append("    clr %g6")
    lines.append(f"    set {_SEED}, %g7")
    _register_phase(lines, walk_depth)
    _memory_phase(lines)
    _icode_phase(lines, icode_words)
    # Self-check: compare against the build-time expected checksum.
    lines.append("    set EXPECTED_CHECKSUM, %o0")
    lines.append("    cmp %g6, %o0")
    lines.append("    be iutest_checksum_ok")
    lines.append("    nop")
    lines.append("    set SW_ERRORS, %o1")
    lines.append("    ld [%o1], %o2")
    lines.append("    add %o2, 1, %o2")
    lines.append("    st %o2, [%o1]")
    lines.append("iutest_checksum_ok:")
    lines.append("    set CHECKSUM, %o1")
    lines.append("    st %g6, [%o1]")
    lines.append("    set ITERATIONS, %o1")
    lines.append("    ld [%o1], %o2")
    lines.append("    add %o2, 1, %o2")
    lines.append("    st %o2, [%o1]")
    lines.append("    subcc %i1, 1, %i1")
    lines.append("    bne iutest_iteration")
    lines.append("    nop")
    lines.append("    ret")
    lines.append("    restore")

    layout_extra = {
        "ITER_COUNT": iterations,
        "SCRUB_WORDS": scrub_words,
        "EXPECTED_CHECKSUM": expected,
    }
    program = build_test_program(
        "\n".join(lines),
        config,
        name="iutest",
        extra_symbols=layout_extra,
    )
    return program, expected
