"""Self-checking test programs (paper section 6).

"Three types of test programs were used: IUTEST that continuously checks the
register file and caches memories for errors, PARANOIA that checks the FPU
operation, and CNCF which is based on real spacecraft navigation software.
Each test program is self-checking and calculates a checksum of all
operations that are made."

The originals are not published; these are same-purpose rebuilds for the
simulator's assembler.  What the experiments depend on is preserved: each
program's *access pattern* (which RAM types it exercises, how often) and its
self-checking checksum discipline.
"""

from repro.programs.builder import (
    EXIT_MAGIC,
    ProgramHarness,
    TestLayout,
    build_test_program,
)
from repro.programs.cncf import build_cncf
from repro.programs.iutest import build_iutest
from repro.programs.paranoia import build_paranoia
from repro.programs.randgen import build_random

__all__ = [
    "EXIT_MAGIC",
    "ProgramHarness",
    "TestLayout",
    "build_cncf",
    "build_iutest",
    "build_paranoia",
    "build_random",
    "build_test_program",
]
