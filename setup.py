"""Setuptools shim.

The project metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` works on environments without the ``wheel`` package
(pip falls back to the legacy ``setup.py develop`` code path).
"""

from setuptools import setup

setup()
